"""Array-state fast simulation engine.

A second implementation of the CMP hierarchy that produces *bit-identical*
statistics to :class:`repro.hierarchy.cmp.CacheHierarchy` (the reference
oracle) while representing all simulator state as flat Python lists of
integers instead of per-block objects:

* **LLC** -- one tag list indexed by ``pos = (bank * sets_per_bank + set)
  * ways + way`` with ``-1`` marking an invalid way, one packed metadata
  list (bit 0 = dirty, bit 1 = relocated, bit 2 = NotInPrC, bit 3 = NRU,
  bits 4+ = RRPV) and one LRU-stamp list, plus a single address -> pos
  dict covering home and relocated copies (the two never coexist for one
  address, and the relocated bit disambiguates a relocated block that
  happens to sit in its home set).
* **Private L1/L2** -- the same tag/dirty/stamp layout per cache with a
  per-cache monotone LRU clock, mirroring the per-policy clock of the
  object engine.
* **Sparse directory** -- flat address/sharers/owner/NRU lists plus a
  packed relocation pointer (the LLC ``pos`` of the relocated copy, -1
  when none).  ZeroDEV spill entries live in the *same* arrays, in slots
  appended past the fixed slice storage and recycled through a free list.
* **Property vectors** -- the real :class:`PropertyVector` objects (whose
  packed-integer bits and Algorithm 1 nextRS are already array-state) fed
  by a single-scan refresh over the packed metadata.

Every statement of the object engine's access flow is ported in order:
counter increments, NRU touches, DRAM request ordering, PV refreshes and
telemetry events happen at exactly the oracle's sequence points, so
``SimStats``/``CoreStats``/energy/audit/telemetry outputs are equal, not
merely statistically close.  ``repro.sim.differential`` asserts this on
every supported scheme x policy x workload combination.

The supported envelope is the paper's core grid -- inclusive,
non-inclusive and the object-property ZIV variants over LRU/SRRIP/NRU --
and :func:`supports` reports whether a configuration falls inside it;
anything else (Hawkeye/Belady policies, CHAR-assisted schemes, QBS/SHARP,
prefetching) stays on the object engine.
"""

from __future__ import annotations

from typing import Optional

from repro.core.properties import PROPERTY_LADDERS
from repro.core.property_vector import PropertyVector
from repro.core.relocation import RelocationTracker
from repro.energy.model import EnergyModel
from repro.hierarchy.cmp import CoherenceError
from repro.hierarchy.interconnect import make_interconnect
from repro.coherence.sparse_directory import DirectoryProtocolError
from repro.core.ziv import ZIVInvariantError
from repro.params import SystemConfig
from repro.sim.stats import SimStats


class UnsupportedConfigError(ValueError):
    """The fast engine does not model this configuration; the caller
    should fall back to the object engine (or fix the request)."""


#: Scheme names the fast engine replicates bit-exactly.
SUPPORTED_SCHEMES = frozenset({
    "inclusive",
    "noninclusive",
    "ziv:notinprc",
    "ziv:lrunotinprc",
    "ziv:maxrrpvnotinprc",
})

#: LLC replacement policies with array ports.
SUPPORTED_POLICIES = frozenset({"lru", "srrip", "nru"})

#: RRPV width shared by every supported policy (ReplacementPolicy.max_rrpv).
_MAX_RRPV = 7


def supports(
    config: SystemConfig,
    scheme_name: str,
    llc_policy: str = "lru",
    scheme_kwargs: Optional[dict] = None,
    policy_kwargs: Optional[dict] = None,
) -> bool:
    """Whether :class:`FastHierarchy` models this run bit-exactly."""
    return (
        scheme_name in SUPPORTED_SCHEMES
        and llc_policy in SUPPORTED_POLICIES
        and not scheme_kwargs
        and not policy_kwargs
        and config.prefetch.kind == "none"
    )


class _FlatCache:
    """One private cache level as flat arrays (direct set indexing)."""

    __slots__ = ("set_mask", "ways", "tag", "dirty", "stamp", "map",
                 "clock", "vcount")

    def __init__(self, sets: int, ways: int) -> None:
        self.set_mask = sets - 1
        self.ways = ways
        n = sets * ways
        self.tag = [-1] * n
        self.dirty = [False] * n
        self.stamp = [0] * n
        self.map: dict[int, int] = {}  # addr -> pos
        self.clock = 0
        self.vcount = [0] * sets


class FastHierarchy:
    """Drop-in :class:`CacheHierarchy` replacement over flat arrays.

    Drives the real :class:`repro.sim.engine.Simulation` loop and the
    real audit/telemetry layers through thin views
    (:mod:`repro.sim.fast.views`); statistics objects
    (:class:`SimStats`, :class:`EnergyModel`, :class:`PropertyVector`,
    :class:`RelocationTracker`) are shared with the object engine
    verbatim so results compare field-for-field.
    """

    #: Which engine produced a result (ledger/profile provenance).
    engine_name = "fast"

    def __init__(
        self,
        config: SystemConfig,
        scheme_name: str,
        llc_policy: str = "lru",
        scheme_kwargs: Optional[dict] = None,
        policy_kwargs: Optional[dict] = None,
    ) -> None:
        if not supports(config, scheme_name, llc_policy,
                        scheme_kwargs, policy_kwargs):
            raise UnsupportedConfigError(
                f"fast engine does not support scheme={scheme_name!r} "
                f"policy={llc_policy!r} scheme_kwargs={scheme_kwargs!r} "
                f"policy_kwargs={policy_kwargs!r} "
                f"prefetch={config.prefetch.kind!r}; supported schemes: "
                f"{sorted(SUPPORTED_SCHEMES)}, policies: "
                f"{sorted(SUPPORTED_POLICIES)}, no prefetching"
            )
        self.config = config
        self.scheme_name = scheme_name
        self.policy_name = llc_policy
        self.stats = SimStats.for_cores(config.cores)
        self._core_stats = self.stats.cores
        self._ziv = scheme_name.startswith("ziv")
        self.inclusive = scheme_name != "noninclusive"
        self.energy = EnergyModel(ziv_mode=self._ziv)
        self.char = None  # the supported envelope never runs CHAR
        self.telemetry = None  # bound by TelemetryCollector.bind()

        # -- LLC arrays ----------------------------------------------------
        llc = config.llc
        self.llc_banks = llc.banks
        self.llc_spb = llc.sets_per_bank
        self.llc_ways = llc.ways
        self.llc_bank_mask = llc.banks - 1
        self.llc_bank_bits = (llc.banks - 1).bit_length()
        self.llc_set_mask = llc.sets_per_bank - 1
        self.bank_size = llc.sets_per_bank * llc.ways
        n = llc.banks * self.bank_size
        self.llc_tag = [-1] * n
        self.llc_meta = [0] * n
        self.llc_stamp = [0] * n
        self.llc_map: dict[int, int] = {}  # addr -> pos (home or relocated)
        self.llc_clock = [0] * llc.banks  # per-bank monotone LRU clock
        self.llc_vcount = [0] * (llc.banks * llc.sets_per_bank)

        # -- private caches ------------------------------------------------
        self._l1s = [
            _FlatCache(config.l1.sets, config.l1.ways)
            for _ in range(config.cores)
        ]
        self._l2s = [
            _FlatCache(config.l2.sets, config.l2.ways)
            for _ in range(config.cores)
        ]

        # -- sparse directory ----------------------------------------------
        dg = config.directory
        self.d_sets = dg.sets
        self.d_ways = dg.ways
        self._dir_set_bits = (dg.sets - 1).bit_length()
        self._dir_set_mask = dg.sets - 1
        self.d_slice_size = llc.banks * dg.sets * dg.ways
        size = self.d_slice_size
        self.d_addr = [-1] * size
        self.d_sharers = [0] * size
        self.d_owner = [-1] * size
        self.d_nru = [False] * size
        self.d_reloc = [-1] * size  # packed LLC pos of the relocated copy
        self.d_vcount = [0] * (llc.banks * dg.sets)  # valid per slice set
        self.d_map: dict[int, int] = {}  # addr -> pos (slices and spill)
        self.d_spill_addrs: dict[int, int] = {}  # insertion-ordered
        self.d_spill_free: list[int] = []
        self.spill_count = 0
        self._zerodev = config.directory_mode == "zerodev"

        # -- DRAM (inlined event-cost model) -------------------------------
        dp = config.dram
        self._dram_ch_mask = dp.channels - 1
        self._dram_ch_shift = (dp.channels - 1).bit_length()
        self._dram_bpc = dp.banks_per_channel
        self._dram_bank_mask = dp.banks_per_channel - 1
        self._dram_bank_shift = (dp.banks_per_channel - 1).bit_length()
        self._dram_row_bits = dp.row_bits
        self._dram_hit = dp.row_hit_latency
        self._dram_miss = dp.row_miss_latency
        self._dram_conflict = dp.row_conflict_latency
        self._dram_busy = dp.bank_busy
        ngb = dp.channels * dp.banks_per_channel
        self._dram_open = [-1] * ngb
        self._dram_ready = [0] * ngb

        # -- latencies -----------------------------------------------------
        self.interconnect = make_interconnect(
            config.core, config.cores, llc.banks
        )
        self._l1_lat = config.l1.latency
        self._l12_lat = config.l1.latency + config.l2.latency
        self._data_lat = llc.data_latency
        self._fwd_lat = config.core.coherence_forward_latency
        self._reloc_penalty = config.core.relocated_access_penalty
        self._base_lat = [
            self._l12_lat
            + 2 * self.interconnect.latency(core, bank)
            + llc.tag_latency
            for core in range(config.cores)
            for bank in range(llc.banks)
        ]

        # -- replacement policy dispatch -----------------------------------
        if llc_policy == "lru":
            self._llc_fill = self._fill_pos_lru
            self._llc_touch = self._touch_pos_lru
            self._victim = self._victim_lru
        elif llc_policy == "srrip":
            self._llc_fill = self._fill_pos_srrip
            self._llc_touch = self._touch_pos_srrip
            self._victim = self._victim_srrip
        else:  # nru
            self._llc_fill = self._fill_pos_nru
            self._llc_touch = self._touch_pos_nru
            self._victim = self._victim_nru

        # -- scheme state --------------------------------------------------
        if self._ziv:
            prop = scheme_name.split(":", 1)[1]
            self._property_name = prop
            self._ladder = PROPERTY_LADDERS[prop]
            self._pvs = [
                {
                    p: PropertyVector(self.llc_spb, name=f"{p}[{b}]")
                    for p in self._ladder
                }
                for b in range(self.llc_banks)
            ]
            self._fast_pvs = [
                tuple(
                    bank_pvs.get(p)
                    for p in ("invalid", "notinprc", "lrunotinprc",
                              "maxrrpvnotinprc")
                )
                for bank_pvs in self._pvs
            ]
            self._ladder_pvs = [
                tuple((p, bank_pvs[p]) for p in self._ladder)
                for bank_pvs in self._pvs
            ]
            self._reloc_rule_maxrrpv = prop == "maxrrpvnotinprc"
            self._reloc = RelocationTracker(
                self.llc_banks,
                fifo_depth=config.relocation_fifo_depth,
                nextrs_latency=config.nextrs_latency,
            )
            self._install = self._install_ziv
            # PropertyTracker.__init__ refreshes every set up front (the
            # all-invalid LLC flips every "invalid" PV bit on); replicate
            # so pv_flips and energy.pv_updates match.
            for sid in range(self.llc_banks * self.llc_spb):
                self._refresh(sid)
        else:
            self._property_name = None
            self._ladder = ()
            self._pvs = None
            self._reloc = None
            if scheme_name == "inclusive":
                self._install = self._install_inclusive
            else:
                self._install = self._install_noninclusive

        # -- audit/telemetry views ----------------------------------------
        from repro.sim.fast.views import (
            FastDirectoryView,
            FastLLCView,
            FastPrivateView,
            FastSchemeView,
        )

        self.llc = FastLLCView(self)
        self.directory = FastDirectoryView(self)
        self.private = [
            FastPrivateView(self, core) for core in range(config.cores)
        ]
        self.scheme = FastSchemeView(self)

    # ------------------------------------------------------------------ access

    def access(
        self,
        core: int,
        addr: int,
        is_write: bool = False,
        pc: int = 0,
        cycle: int = 0,
        global_pos: int = 0,
    ) -> int:
        """One memory access; returns its latency in cycles.

        Statement-for-statement port of ``CacheHierarchy.access``: every
        counter increment and coherence action happens at the oracle's
        sequence point.
        """
        cs = self._core_stats[core]
        cs.accesses += 1
        energy = self.energy
        energy.l1_accesses += 1

        l1 = self._l1s[core]
        pos = l1.map.get(addr, -1)
        if pos >= 0:
            cs.l1_hits += 1
            extra = 0
            if is_write:
                if not l1.dirty[pos]:
                    extra = self._write_upgrade(core, addr)
                l1.dirty[pos] = True
            l1.clock += 1
            l1.stamp[pos] = l1.clock
            return self._l1_lat + extra

        cs.l1_misses += 1
        energy.l2_accesses += 1
        l2 = self._l2s[core]
        pos = l2.map.get(addr, -1)
        if pos >= 0:
            cs.l2_hits += 1
            extra = 0
            if is_write:
                if not l2.dirty[pos]:
                    extra = self._write_upgrade(core, addr)
                l2.dirty[pos] = True
            l2.clock += 1
            l2.stamp[pos] = l2.clock
            n1 = self._fill_l1(core, addr, False, is_write)
            if n1 is not None:
                self._handle_notice(core, n1[0], n1[1], cycle)
            return self._l12_lat + extra

        cs.l2_misses += 1
        return self._llc_access(core, addr, is_write, cycle)

    # -------------------------------------------------------------- LLC path

    def _llc_access(
        self, core: int, addr: int, is_write: bool, cycle: int
    ) -> int:
        energy = self.energy
        energy.llc_tag_accesses += 1
        energy.dir_accesses += 1
        dpos = self._dir_lookup(addr)
        bank = addr & self.llc_bank_mask
        lat = self._base_lat[core * self.llc_banks + bank]

        if dpos >= 0 and self.d_reloc[dpos] >= 0:
            return self._relocated_hit(core, addr, dpos, is_write, cycle, lat)

        hp = self.llc_map.get(addr, -1)
        if hp >= 0 and not (self.llc_meta[hp] & 2):
            return self._llc_hit(core, addr, dpos, hp, is_write, cycle, lat)

        self.stats.llc_misses += 1
        if dpos >= 0:
            if self.inclusive:
                raise CoherenceError(
                    f"inclusive LLC missed on a directory-tracked block "
                    f"{addr:#x}"
                )
            return self._forward_fill(core, addr, dpos, is_write, cycle, lat)
        return self._memory_fill(core, addr, is_write, cycle, lat)

    def _relocated_hit(
        self, core: int, addr: int, dpos: int, is_write: bool,
        cycle: int, lat: int,
    ) -> int:
        rp = self.d_reloc[dpos]
        if not (self.llc_meta[rp] & 2) or self.llc_tag[rp] != addr:
            raise CoherenceError(
                f"directory relocation pointer for {addr:#x} is stale"
            )
        extra = self._coherence_on_miss(core, addr, dpos, is_write, cycle)
        self._llc_touch(rp)
        if self._ziv:
            self._refresh(rp // self.llc_ways)
        stats = self.stats
        stats.llc_hits += 1
        stats.relocated_hits += 1
        self.energy.llc_data_reads += 1
        self.d_sharers[dpos] |= 1 << core
        if is_write:
            self.d_owner[dpos] = core
        self._fill_private(core, addr, is_write, cycle)
        return lat + self._data_lat + self._reloc_penalty + extra

    def _llc_hit(
        self, core: int, addr: int, dpos: int, hp: int, is_write: bool,
        cycle: int, lat: int,
    ) -> int:
        extra = 0
        if dpos >= 0:
            extra = self._coherence_on_miss(core, addr, dpos, is_write, cycle)
        self._llc_touch(hp)
        self.llc_meta[hp] &= ~4  # not_in_prc = False
        if self._ziv:
            self._refresh(hp // self.llc_ways)
        self.stats.llc_hits += 1
        self.energy.llc_data_reads += 1
        if dpos < 0:
            dpos = self._dir_allocate(addr, cycle)
        self.d_sharers[dpos] |= 1 << core
        if is_write:
            self.d_owner[dpos] = core
        self._fill_private(core, addr, is_write, cycle)
        return lat + self._data_lat + extra

    def _forward_fill(
        self, core: int, addr: int, dpos: int, is_write: bool,
        cycle: int, lat: int,
    ) -> int:
        extra = self._coherence_on_miss(core, addr, dpos, is_write, cycle)
        self._install(addr, cycle)
        self.energy.llc_data_writes += 1
        self.d_sharers[dpos] |= 1 << core
        if is_write:
            self.d_owner[dpos] = core
        self._fill_private(core, addr, is_write, cycle)
        return lat + self._fwd_lat + extra

    def _memory_fill(
        self, core: int, addr: int, is_write: bool, cycle: int, lat: int
    ) -> int:
        dram_lat = self._dram(addr, cycle)
        self.stats.dram_reads += 1
        self.energy.dram_accesses += 1
        self._install(addr, cycle)
        self.stats.llc_fills += 1
        self.energy.llc_data_writes += 1
        dpos = self._dir_allocate(addr, cycle)
        self.d_sharers[dpos] |= 1 << core
        if is_write:
            self.d_owner[dpos] = core
        self._fill_private(core, addr, is_write, cycle)
        return lat + dram_lat

    # ------------------------------------------------------------- coherence

    def _write_upgrade(self, core: int, addr: int) -> int:
        dpos = self._dir_lookup(addr)
        if dpos < 0:
            raise CoherenceError(
                f"private hit on {addr:#x} with no directory entry"
            )
        if self.d_owner[dpos] == core:
            return 0
        extra = 0
        bit = 1 << core
        others = self.d_sharers[dpos] & ~bit
        if others:
            self._invalidate_sharers(others, addr)
            self.d_sharers[dpos] = bit
            extra = self._fwd_lat
        self.d_owner[dpos] = core
        return extra

    def _coherence_on_miss(
        self, core: int, addr: int, dpos: int, is_write: bool, cycle: int
    ) -> int:
        extra = 0
        if is_write:
            others = self.d_sharers[dpos] & ~(1 << core)
            if others:
                self._invalidate_sharers(others, addr)
                self.d_sharers[dpos] &= 1 << core
                self.d_owner[dpos] = -1
                extra = self._fwd_lat
        else:
            owner = self.d_owner[dpos]
            if owner >= 0 and owner != core:
                dirty = self._downgrade(owner, addr)
                self.d_owner[dpos] = -1
                if dirty:
                    self._merge_dirty(addr)
                extra = self._fwd_lat
        return extra

    def _invalidate_sharers(self, mask: int, addr: int) -> None:
        core = 0
        while mask:
            if mask & 1:
                copies, _dirty = self._invalidate(core, addr)
                if copies:
                    self.stats.coherence_invalidations += 1
            mask >>= 1
            core += 1

    def _invalidate(self, core: int, addr: int) -> tuple[int, bool]:
        """Kill every private copy; returns (copies, dirty data present)."""
        copies = 0
        dirty = False
        for cache in (self._l1s[core], self._l2s[core]):
            pos = cache.map.pop(addr, -1)
            if pos >= 0:
                cache.tag[pos] = -1
                cache.vcount[pos // cache.ways] -= 1
                copies += 1
                dirty = dirty or cache.dirty[pos]
        return copies, dirty

    def _downgrade(self, core: int, addr: int) -> bool:
        dirty = False
        for cache in (self._l1s[core], self._l2s[core]):
            pos = cache.map.get(addr, -1)
            if pos >= 0:
                dirty = dirty or cache.dirty[pos]
                cache.dirty[pos] = False
        return dirty

    def _merge_dirty(self, addr: int) -> None:
        """Dirty data written back from a private cache: update the LLC
        copy if one exists (normal or relocated), else write to memory.
        The oracle passes no context here, so the writeback posts at
        cycle 0 -- replicated for DRAM-state equality."""
        hp = self.llc_map.get(addr, -1)
        if hp >= 0 and not (self.llc_meta[hp] & 2):
            self.llc_meta[hp] |= 1
            return
        dpos = self._dir_lookup(addr)
        if dpos >= 0 and self.d_reloc[dpos] >= 0:
            self.llc_meta[self.d_reloc[dpos]] |= 1
            return
        self._writeback(addr, 0)

    # ---------------------------------------------------------- private fills

    def _fill_private(
        self, core: int, addr: int, is_write: bool, cycle: int
    ) -> None:
        n2 = self._fill_l2(core, addr, is_write)
        n1 = self._fill_l1(core, addr, is_write, is_write)
        if n2 is not None:
            self._handle_notice(core, n2[0], n2[1], cycle)
        if n1 is not None:
            self._handle_notice(core, n1[0], n1[1], cycle)

    def _fill_l2(
        self, core: int, addr: int, is_write: bool
    ) -> Optional[tuple[int, bool]]:
        l2 = self._l2s[core]
        s = addr & l2.set_mask
        base = s * l2.ways
        notice = None
        tags = l2.tag
        if l2.vcount[s] < l2.ways:
            pos = base
            while tags[pos] >= 0:
                pos += 1
            l2.vcount[s] += 1
        else:
            stamps = l2.stamp
            pos = base
            best = stamps[base]
            for p in range(base + 1, base + l2.ways):
                sp = stamps[p]
                if sp < best:
                    best = sp
                    pos = p
            old_addr = tags[pos]
            old_dirty = l2.dirty[pos]
            del l2.map[old_addr]
            l1 = self._l1s[core]
            lpos = l1.map.get(old_addr, -1)
            if lpos >= 0:
                if old_dirty:
                    l1.dirty[lpos] = True
            else:
                notice = (old_addr, old_dirty)
        tags[pos] = addr
        l2.map[addr] = pos
        l2.dirty[pos] = is_write
        l2.clock += 1
        l2.stamp[pos] = l2.clock
        return notice

    def _fill_l1(
        self, core: int, addr: int, dirty: bool, is_write: bool
    ) -> Optional[tuple[int, bool]]:
        l1 = self._l1s[core]
        pos = l1.map.get(addr, -1)
        if pos >= 0:
            l1.clock += 1
            l1.stamp[pos] = l1.clock
            if dirty or is_write:
                l1.dirty[pos] = True
            return None
        s = addr & l1.set_mask
        base = s * l1.ways
        notice = None
        tags = l1.tag
        if l1.vcount[s] < l1.ways:
            pos = base
            while tags[pos] >= 0:
                pos += 1
            l1.vcount[s] += 1
        else:
            stamps = l1.stamp
            pos = base
            best = stamps[base]
            for p in range(base + 1, base + l1.ways):
                sp = stamps[p]
                if sp < best:
                    best = sp
                    pos = p
            old_addr = tags[pos]
            old_dirty = l1.dirty[pos]
            del l1.map[old_addr]
            l2 = self._l2s[core]
            lpos = l2.map.get(old_addr, -1)
            if lpos >= 0:
                if old_dirty:
                    l2.dirty[lpos] = True
            else:
                notice = (old_addr, old_dirty)
        tags[pos] = addr
        l1.map[addr] = pos
        l1.dirty[pos] = dirty or is_write
        l1.clock += 1
        l1.stamp[pos] = l1.clock
        return notice

    # ------------------------------------------------------- eviction notices

    def _handle_notice(
        self, core: int, naddr: int, ndirty: bool, cycle: int
    ) -> None:
        stats = self.stats
        stats.eviction_notices += 1
        dpos = self._dir_lookup(naddr)
        if dpos < 0:
            raise CoherenceError(
                f"eviction notice for untracked block {naddr:#x}"
            )
        sharers = self.d_sharers[dpos] & ~(1 << core)
        self.d_sharers[dpos] = sharers
        if self.d_owner[dpos] == core:
            self.d_owner[dpos] = -1
        if sharers:
            return
        rp = self.d_reloc[dpos]
        if rp >= 0:
            self._kill_relocated(rp, naddr, ndirty, cycle)
            self._dir_free(naddr)
            return
        self._dir_free(naddr)
        hp = self.llc_map.get(naddr, -1)
        if hp >= 0 and not (self.llc_meta[hp] & 2):
            m = self.llc_meta[hp] | 4  # not_in_prc = True
            if ndirty:
                m |= 1
                stats.llc_writebacks_in += 1
            self.llc_meta[hp] = m
            if self._ziv:
                self._refresh(hp // self.llc_ways)
        elif ndirty:
            self._writeback(naddr, cycle)

    def _kill_relocated(
        self, rp: int, addr: int, notice_dirty: bool, cycle: int
    ) -> None:
        m = self.llc_meta[rp]
        if not (m & 2) or self.llc_tag[rp] != addr:
            raise CoherenceError(
                f"stale relocation pointer while killing {addr:#x}"
            )
        dirty = bool(m & 1) or notice_dirty
        del self.llc_map[addr]
        self.llc_tag[rp] = -1
        sid = rp // self.llc_ways
        self.llc_vcount[sid] -= 1
        if dirty:
            self._writeback(addr, cycle)
        if self._ziv:
            self._refresh(sid)

    # ------------------------------------------------------ directory storage

    def _dir_lookup(self, addr: int) -> int:
        """Position of the tracking entry (slice or spill), -1 if absent.
        Slice hits set the NRU bit, exactly like the object lookup; spill
        hits do not (spill entries never re-enter a slice set)."""
        pos = self.d_map.get(addr, -1)
        if 0 <= pos < self.d_slice_size:
            self.d_nru[pos] = True
        return pos

    def _dir_set_index(self, addr: int) -> int:
        """XOR-folded slice-set index (DirectoryGeometry.set_index)."""
        a = addr >> self.llc_bank_bits
        bits = self._dir_set_bits
        if bits == 0:
            return 0
        idx = 0
        while a:
            idx ^= a
            a >>= bits
        return idx & self._dir_set_mask

    def _dir_allocate(self, addr: int, cycle: int) -> int:
        """Install a tracking entry; handles displacement (MESI
        back-invalidation or ZeroDEV spill) before returning."""
        bank = addr & self.llc_bank_mask
        dsid = bank * self.d_sets + self._dir_set_index(addr)
        base = dsid * self.d_ways
        end = base + self.d_ways
        d_addr = self.d_addr
        displaced = None
        if self.d_vcount[dsid] < self.d_ways:
            pos = d_addr.index(-1, base, end)
            self.d_vcount[dsid] += 1
        else:
            d_nru = self.d_nru
            try:
                pos = d_nru.index(False, base, end)
            except ValueError:
                d_nru[base:end] = [False] * self.d_ways
                pos = base
            displaced = (
                d_addr[pos],
                self.d_sharers[pos],
                self.d_owner[pos],
                self.d_reloc[pos],
            )
            del self.d_map[d_addr[pos]]
        d_addr[pos] = addr
        self.d_sharers[pos] = 0
        self.d_owner[pos] = -1
        self.d_nru[pos] = True
        self.d_reloc[pos] = -1
        self.d_map[addr] = pos
        if displaced is not None:
            if self._zerodev:
                self._spill(displaced)
            else:
                self._handle_displaced(displaced, cycle)
        return pos

    def _spill(self, displaced: tuple[int, int, int, int]) -> None:
        """ZeroDEV: the displaced entry moves to the spill region (slots
        past the slice storage, recycled through a free list)."""
        daddr, sharers, owner, reloc = displaced
        if self.d_spill_free:
            spos = self.d_spill_free.pop()
        else:
            spos = len(self.d_addr)
            self.d_addr.append(-1)
            self.d_sharers.append(0)
            self.d_owner.append(-1)
            self.d_nru.append(False)
            self.d_reloc.append(-1)
        self.d_addr[spos] = daddr
        self.d_sharers[spos] = sharers
        self.d_owner[spos] = owner
        self.d_nru[spos] = False
        self.d_reloc[spos] = reloc
        self.d_map[daddr] = spos
        self.d_spill_addrs[daddr] = spos
        self.spill_count += 1

    def _dir_free(self, addr: int) -> None:
        pos = self.d_map.pop(addr, -1)
        if pos < 0:
            raise DirectoryProtocolError(
                f"free of untracked block {addr:#x} -- double free, or the "
                f"block was never allocated"
            )
        if pos >= self.d_slice_size:
            del self.d_spill_addrs[addr]
            self.d_spill_free.append(pos)
        else:
            self.d_vcount[pos // self.d_ways] -= 1
        self.d_addr[pos] = -1
        self.d_sharers[pos] = 0
        self.d_owner[pos] = -1
        self.d_nru[pos] = False
        self.d_reloc[pos] = -1

    def _handle_displaced(
        self, displaced: tuple[int, int, int, int], cycle: int
    ) -> None:
        """MESI-mode directory eviction: back-invalidate the private
        copies and kill the relocated LLC copy, if any (paper III-F)."""
        daddr, sharers, _owner, reloc = displaced
        stats = self.stats
        stats.directory_evictions += 1
        stats.back_invalidations_dir += 1
        dirty_any = False
        victims = 0
        mask = sharers
        core = 0
        while mask:
            if mask & 1:
                copies, dirty = self._invalidate(core, daddr)
                if copies:
                    victims += 1
                    stats.inclusion_victims_dir += 1
                dirty_any = dirty_any or dirty
            mask >>= 1
            core += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                "directory_eviction",
                addr=daddr,
                sharers=sharers,
                victims=victims,
                relocated=reloc >= 0,
            )
        if reloc >= 0:
            dirty = bool(self.llc_meta[reloc] & 1) or dirty_any
            del self.llc_map[self.llc_tag[reloc]]
            self.llc_tag[reloc] = -1
            sid = reloc // self.llc_ways
            self.llc_vcount[sid] -= 1
            if dirty:
                self._writeback(daddr, cycle)
            if self._ziv:
                self._refresh(sid)
            return
        hp = self.llc_map.get(daddr, -1)
        if hp >= 0 and not (self.llc_meta[hp] & 2):
            m = self.llc_meta[hp] | 4
            if dirty_any:
                m |= 1
            self.llc_meta[hp] = m
            if self._ziv:
                self._refresh(hp // self.llc_ways)
        elif dirty_any:
            self._writeback(daddr, cycle)

    def _back_invalidate(self, addr: int, cycle: int) -> None:
        """Inclusive-baseline LLC eviction: invalidate every private copy
        of ``addr`` and free its directory entry.  The trailing dirty
        writeback posts at cycle 0 (the oracle passes no context)."""
        dpos = self._dir_lookup(addr)
        if dpos < 0 or self.d_sharers[dpos] == 0:
            return
        stats = self.stats
        stats.back_invalidations_llc += 1
        sharers = self.d_sharers[dpos]
        dirty_any = False
        victims = 0
        mask = sharers
        core = 0
        while mask:
            if mask & 1:
                copies, dirty = self._invalidate(core, addr)
                if copies:
                    victims += 1
                    stats.inclusion_victims_llc += 1
                dirty_any = dirty_any or dirty
            mask >>= 1
            core += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                "back_invalidation",
                addr=addr,
                trigger="llc",
                sharers=sharers,
                victims=victims,
            )
        self._dir_free(addr)
        if dirty_any:
            hp = self.llc_map.get(addr, -1)
            if hp >= 0 and not (self.llc_meta[hp] & 2):
                self.llc_meta[hp] |= 1
            else:
                self._writeback(addr, 0)

    # ------------------------------------------------------------ LLC storage

    def _evict_llc(self, pos: int, cycle: int) -> None:
        """Evict the valid block at ``pos``; dirty data goes to memory."""
        m = self.llc_meta[pos]
        addr = self.llc_tag[pos]
        del self.llc_map[addr]
        self.llc_tag[pos] = -1
        self.llc_vcount[pos // self.llc_ways] -= 1
        if m & 1:
            self._writeback(addr, cycle)

    def _install_home(self, pos: int, sid: int, addr: int) -> None:
        """Fill ``addr`` into the invalid way at ``pos`` (home set)."""
        self.llc_tag[pos] = addr
        self.llc_meta[pos] = 0
        self.llc_stamp[pos] = 0
        self.llc_map[addr] = pos
        self.llc_vcount[sid] += 1
        self._llc_fill(pos)

    # -- replacement-policy array ports (bound at init) --------------------

    def _fill_pos_lru(self, pos: int) -> None:
        bank = pos // self.bank_size
        self.llc_clock[bank] += 1
        self.llc_stamp[pos] = self.llc_clock[bank]

    def _touch_pos_lru(self, pos: int) -> None:
        bank = pos // self.bank_size
        self.llc_clock[bank] += 1
        self.llc_stamp[pos] = self.llc_clock[bank]

    def _victim_lru(self, base: int) -> int:
        stamps = self.llc_stamp
        pos = base
        best = stamps[base]
        for p in range(base + 1, base + self.llc_ways):
            sp = stamps[p]
            if sp < best:
                best = sp
                pos = p
        return pos

    def _fill_pos_srrip(self, pos: int) -> None:
        # insertion RRPV = max_rrpv - 1 (the RRPV bits are clear on entry)
        self.llc_meta[pos] |= (_MAX_RRPV - 1) << 4

    def _touch_pos_srrip(self, pos: int) -> None:
        self.llc_meta[pos] &= 0xF  # RRPV -> 0

    def _victim_srrip(self, base: int) -> int:
        metas = self.llc_meta
        end = base + self.llc_ways
        current_max = 0
        for p in range(base, end):
            r = metas[p] >> 4
            if r > current_max:
                current_max = r
        delta = _MAX_RRPV - current_max
        if delta > 0:
            inc = delta << 4
            for p in range(base, end):
                metas[p] += inc
        for p in range(base, end):
            if (metas[p] >> 4) >= _MAX_RRPV:
                return p
        raise AssertionError("aging must expose a max-RRPV block")

    def _fill_pos_nru(self, pos: int) -> None:
        self.llc_meta[pos] |= 8

    def _touch_pos_nru(self, pos: int) -> None:
        self.llc_meta[pos] |= 8

    def _victim_nru(self, base: int) -> int:
        metas = self.llc_meta
        end = base + self.llc_ways
        all_set = True
        for p in range(base, end):
            if not (metas[p] & 8):
                all_set = False
                break
        if all_set:
            for p in range(base, end):
                metas[p] &= ~8
        for p in range(base, end):
            if not (metas[p] & 8):
                return p
        return base

    # --------------------------------------------------------- scheme installs

    def _install_inclusive(self, addr: int, cycle: int) -> None:
        bank = addr & self.llc_bank_mask
        sid = (bank * self.llc_spb
               + ((addr >> self.llc_bank_bits) & self.llc_set_mask))
        base = sid * self.llc_ways
        if self.llc_vcount[sid] < self.llc_ways:
            tags = self.llc_tag
            pos = base
            while tags[pos] >= 0:
                pos += 1
        else:
            pos = self._victim(base)
            # Back-invalidation first: a dirty private copy marks the
            # victim dirty, so the eviction below writes it back.
            self._back_invalidate(self.llc_tag[pos], cycle)
            self._evict_llc(pos, cycle)
        self._install_home(pos, sid, addr)

    def _install_noninclusive(self, addr: int, cycle: int) -> None:
        bank = addr & self.llc_bank_mask
        sid = (bank * self.llc_spb
               + ((addr >> self.llc_bank_bits) & self.llc_set_mask))
        base = sid * self.llc_ways
        if self.llc_vcount[sid] < self.llc_ways:
            tags = self.llc_tag
            pos = base
            while tags[pos] >= 0:
                pos += 1
        else:
            pos = self._victim(base)
            self._evict_llc(pos, cycle)
        self._install_home(pos, sid, addr)

    def _install_ziv(self, addr: int, cycle: int) -> None:
        bank = addr & self.llc_bank_mask
        sid = (bank * self.llc_spb
               + ((addr >> self.llc_bank_bits) & self.llc_set_mask))
        base = sid * self.llc_ways
        if self.llc_vcount[sid] < self.llc_ways:
            tags = self.llc_tag
            pos = base
            while tags[pos] >= 0:
                pos += 1
            self._install_home(pos, sid, addr)
            self._refresh(sid)
            return
        vpos = self._victim(base)
        if not self._privately_cached(self.llc_tag[vpos]):
            # Common case: the baseline victim generates no inclusion
            # victims, so the ZIV LLC behaves exactly like the baseline.
            self._evict_llc(vpos, cycle)
            self._install_home(vpos, sid, addr)
            self._refresh(sid)
            return
        self._relocation_path(bank, sid, vpos, addr, cycle)

    # ------------------------------------------------------------ relocation

    def _privately_cached(self, addr: int) -> bool:
        dpos = self._dir_lookup(addr)
        return dpos >= 0 and self.d_sharers[dpos] != 0

    def _relocation_path(
        self, bank: int, sid: int, vpos: int, addr: int, cycle: int
    ) -> None:
        """The baseline victim is privately cached: walk the property
        ladder (original set first, then the global nextRS, per level)."""
        set_idx = sid - bank * self.llc_spb
        # Victim selection may have aged replacement state (SRRIP), so
        # make sure the original set's property bits are current.
        self._refresh(sid)
        stats = self.stats
        tags = self.llc_tag
        for level, pv in self._ladder_pvs[bank]:
            if (pv.bits >> set_idx) & 1:
                wp = self._select_reloc_victim(sid)
                if wp >= 0:
                    wt = tags[wp]
                    if wt >= 0 and self._privately_cached(wt):
                        raise ZIVInvariantError(
                            f"relocation-set victim {wt:#x} is privately "
                            f"cached"
                        )
                    stats.relocation_same_set += 1
                    stats.count_property_hit(f"local:{level}")
                    if wt >= 0:
                        self._evict_llc(wp, cycle)
                    self._install_home(wp, sid, addr)
                    self._refresh(sid)
                    return
            rs = pv.next_relocation_set()
            if rs >= 0:
                stats.count_property_hit(f"global:{level}")
                self._relocate(bank, sid, vpos, bank, rs, cycle, level, False)
                self._install_home(vpos, sid, addr)
                self._refresh(sid)
                return
        # Every PV of this bank is empty: cross-bank fallback (III-D1),
        # one-hop neighbours first, then the remaining banks.
        banks = self.llc_banks
        order: list[int] = []
        if banks > 1:
            order = [(bank + 1) % banks, (bank - 1) % banks]
            order += [b for b in range(banks) if b != bank and b not in order]
        for b in order:
            for level, pv in self._ladder_pvs[b]:
                rs = pv.next_relocation_set()
                if rs >= 0:
                    stats.relocations_cross_bank += 1
                    self._relocate(bank, sid, vpos, b, rs, cycle, level, True)
                    self._install_home(vpos, sid, addr)
                    self._refresh(sid)
                    return
        raise ZIVInvariantError(
            "no relocation set exists in any bank; aggregate private "
            "capacity must exceed the LLC capacity"
        )

    def _select_reloc_victim(self, sid: int) -> int:
        """Relocation-set victim: invalid way first, then the scheme
        property's rule (paper III-E).  -1 if none qualifies."""
        base = sid * self.llc_ways
        tags = self.llc_tag
        if self.llc_vcount[sid] < self.llc_ways:
            pos = base
            while tags[pos] >= 0:
                pos += 1
            return pos
        metas = self.llc_meta
        end = base + self.llc_ways
        if self._reloc_rule_maxrrpv:
            best = -1
            best_rrpv = -1
            for p in range(base, end):
                m = metas[p]
                if m & 4:
                    r = m >> 4
                    if r > best_rrpv:
                        best = p
                        best_rrpv = r
            return best
        stamps = self.llc_stamp
        best = -1
        best_stamp = 0
        for p in range(base, end):
            if metas[p] & 4:
                sp = stamps[p]
                if best < 0 or sp < best_stamp:
                    best = p
                    best_stamp = sp
        return best

    def _relocate(
        self,
        src_bank: int,
        src_sid: int,
        src_pos: int,
        dst_bank: int,
        dst_set: int,
        cycle: int,
        level: str,
        cross_bank: bool,
    ) -> None:
        dst_sid = dst_bank * self.llc_spb + dst_set
        dst_pos = self._select_reloc_victim(dst_sid)
        if dst_pos < 0:
            raise ZIVInvariantError(
                f"relocation set {dst_set} of bank {dst_bank} has no "
                "evictable block despite its property bit"
            )
        tags = self.llc_tag
        dt = tags[dst_pos]
        if dt >= 0:
            if self._privately_cached(dt):
                raise ZIVInvariantError(
                    f"relocation-set victim {dt:#x} is privately cached"
                )
            self._evict_llc(dst_pos, cycle)
        maddr = tags[src_pos]
        mmeta = self.llc_meta[src_pos]
        was_relocated = bool(mmeta & 2)
        # extract (no policy eviction hook -- the block stays in the LLC)
        del self.llc_map[maddr]
        tags[src_pos] = -1
        self.llc_vcount[src_sid] -= 1
        # install relocated: keeps address and dirtiness, Relocated on,
        # replacement state initialised as a normal fill
        tags[dst_pos] = maddr
        self.llc_meta[dst_pos] = 2 | (mmeta & 1)
        self.llc_stamp[dst_pos] = 0
        self.llc_map[maddr] = dst_pos
        self.llc_vcount[dst_sid] += 1
        self._llc_fill(dst_pos)
        dpos = self._dir_lookup(maddr)
        if dpos < 0:
            raise ZIVInvariantError(
                f"relocating {maddr:#x} with no directory entry"
            )
        self.d_reloc[dpos] = dst_pos
        stats = self.stats
        stats.relocations += 1
        if was_relocated:
            stats.relocations_rechained += 1
        self.energy.record_relocation()
        self._reloc.record(src_bank, cycle)
        if self._reloc.fifo_peak > stats.relocation_fifo_peak:
            stats.relocation_fifo_peak = self._reloc.fifo_peak
        telemetry = self.telemetry
        if telemetry is not None:
            kind = (
                "cross_bank_fallback" if cross_bank
                else "re_relocation" if was_relocated
                else "relocation"
            )
            telemetry.emit(
                kind,
                addr=maddr,
                src=[src_bank, src_sid - src_bank * self.llc_spb,
                     src_pos - src_sid * self.llc_ways],
                dst=[dst_bank, dst_set, dst_pos - dst_sid * self.llc_ways],
                property=level,
                rechained=was_relocated,
                cross_bank=cross_bank,
            )
        self._refresh(src_sid)
        self._refresh(dst_sid)

    # ------------------------------------------------------- property vectors

    def _refresh(self, sid: int) -> None:
        """Recompute every tracked property bit of one LLC set (one
        associativity-wide scan over the packed metadata)."""
        bank = sid // self.llc_spb
        set_idx = sid - bank * self.llc_spb
        base = sid * self.llc_ways
        tags = self.llc_tag
        metas = self.llc_meta
        stamps = self.llc_stamp
        has_nip = False
        has_maxrrpv_nip = False
        lru_pos = -1
        lru_stamp = 0
        for p in range(base, base + self.llc_ways):
            if tags[p] < 0:
                continue
            m = metas[p]
            if m & 4:
                has_nip = True
                if (m >> 4) >= _MAX_RRPV:
                    has_maxrrpv_nip = True
            sp = stamps[p]
            if lru_pos < 0 or sp < lru_stamp:
                lru_pos = p
                lru_stamp = sp
        pv_invalid, pv_nip, pv_lru, pv_maxrrpv = self._fast_pvs[bank]
        if pv_invalid is not None:
            pv_invalid.set_bit(set_idx, self.llc_vcount[sid] < self.llc_ways)
        if pv_nip is not None:
            pv_nip.set_bit(set_idx, has_nip)
        if pv_lru is not None:
            pv_lru.set_bit(
                set_idx, lru_pos >= 0 and bool(metas[lru_pos] & 4)
            )
        if pv_maxrrpv is not None:
            pv_maxrrpv.set_bit(set_idx, has_maxrrpv_nip)

    # ------------------------------------------------------------------- DRAM

    def _dram(self, addr: int, cycle: int) -> int:
        """Inlined DRAMModel.access (same bank/row mapping and timing)."""
        rest = addr >> self._dram_ch_shift
        gb = ((addr & self._dram_ch_mask) * self._dram_bpc
              + (rest & self._dram_bank_mask))
        row = (rest >> self._dram_bank_shift) >> self._dram_row_bits
        ready = self._dram_ready
        wait = ready[gb] - cycle
        if wait < 0:
            wait = 0
        open_row = self._dram_open[gb]
        if open_row == row:
            service = self._dram_hit
        elif open_row < 0:
            service = self._dram_miss
        else:
            service = self._dram_conflict
        self._dram_open[gb] = row
        ready[gb] = cycle + wait + self._dram_busy
        return wait + service

    def _writeback(self, addr: int, cycle: int) -> None:
        self._dram(addr, cycle)
        self.stats.dram_writes += 1
        self.stats.llc_writebacks_out += 1
        self.energy.dram_accesses += 1

    # ------------------------------------------------------- fused batch driver

    def _decode_trace(self, recs, core: int) -> tuple[list, int]:
        """Per-record derived columns for the fused driver.

        Every address-derived quantity the hot loop needs -- home bank,
        base latency, LLC set id, directory slice-set id (the XOR fold),
        private set bases and the DRAM bank/row split -- is a pure
        function of the record and the hierarchy geometry, so it is
        computed once per trace here (in C-speed comprehensions) and
        zipped into one tuple per record.  ``run_trace`` memoises the
        result on the CoreTrace object keyed by the geometry signature,
        mirroring ``Workload.fingerprint``'s cached-attribute pattern
        (traces are immutable after construction)."""
        base_cpi = self.config.core.base_cpi
        bank_mask = self.llc_bank_mask
        bank_bits = self.llc_bank_bits
        set_mask = self.llc_set_mask
        spb = self.llc_spb
        base_lat = self._base_lat
        core_base = core * self.llc_banks
        d_sets = self.d_sets
        fold_bits = self._dir_set_bits
        fold_mask = self._dir_set_mask
        l1 = self._l1s[core]
        l2 = self._l2s[core]
        dch_mask = self._dram_ch_mask
        dch_shift = self._dram_ch_shift
        dbpc = self._dram_bpc
        dbk_mask = self._dram_bank_mask
        dbk_shift = self._dram_bank_shift
        drow_bits = self._dram_row_bits

        addrs = [r.addr for r in recs]
        writes = [r.is_write for r in recs]
        offs = [int(r.gap * base_cpi) for r in recs]
        banks = [a & bank_mask for a in addrs]
        lats = [base_lat[core_base + b] for b in banks]
        sids = [
            b * spb + ((a >> bank_bits) & set_mask)
            for a, b in zip(addrs, banks)
        ]
        if fold_bits:

            def fold(a: int) -> int:
                si = 0
                while a:
                    si ^= a
                    a >>= fold_bits
                return si & fold_mask

            dsids = [
                b * d_sets + fold(a >> bank_bits)
                for a, b in zip(addrs, banks)
            ]
        else:
            dsids = [b * d_sets for b in banks]
        l1_mask = l1.set_mask
        l1_ways = l1.ways
        l2_mask = l2.set_mask
        l2_ways = l2.ways
        s2s = [a & l2_mask for a in addrs]
        b2s = [s * l2_ways for s in s2s]
        s1s = [a & l1_mask for a in addrs]
        b1s = [s * l1_ways for s in s1s]
        gbs = [
            (a & dch_mask) * dbpc + ((a >> dch_shift) & dbk_mask)
            for a in addrs
        ]
        rows = [
            ((a >> dch_shift) >> dbk_shift) >> drow_bits for a in addrs
        ]
        cols = list(
            zip(
                addrs, writes, offs, lats, banks, sids, dsids,
                s2s, b2s, s1s, b1s, gbs, rows,
            )
        )
        instr = sum(r.gap for r in recs) + len(recs)
        return cols, instr

    def run_trace(self, workload, profiler=None) -> int:
        """Timing-mode driver with the access path fused into the loop.

        Exact port of ``Simulation._run_timing`` + :meth:`access` with the
        dominant paths (private fills, directory allocation, DRAM, the
        inclusive/non-inclusive LLC install and the eviction-notice
        handshake) inlined into one loop body.  Address-derived values
        come precomputed per record (:meth:`_decode_trace`), and the hot
        counters are tracked as a handful of per-path tallies from which
        every stats/energy field is derived at the single post-loop
        flush.  Only valid when no per-access hook observes intermediate
        state -- ``Simulation.run`` delegates here exactly when both the
        audit and telemetry hooks are absent, so counters are only ever
        read after the flush.  Rare paths (relocated hits, coherence
        forwards, ZIV installs, spills) reuse the per-access methods;
        their direct ``self.stats``/``self.energy`` increments commute
        with the batched flush.

        ``profiler`` (a :class:`~repro.obs.profile.PhaseProfiler`, or
        None) brackets the decode/access-loop/flush phases.  It is not
        a per-access hook -- the fused driver stays valid under
        profiling, and the disabled path costs one predicate per phase
        transition, never per access.
        """
        from heapq import heapify, heappop, heappush

        n_cores = self.config.cores

        # -- local bindings ------------------------------------------------
        l1s = self._l1s
        l2s = self._l2s
        llc_map = self.llc_map
        llc_tag = self.llc_tag
        llc_meta = self.llc_meta
        llc_stamp = self.llc_stamp
        llc_vcount = self.llc_vcount
        llc_clock = self.llc_clock
        bank_mask = self.llc_bank_mask
        bank_bits = self.llc_bank_bits
        set_mask = self.llc_set_mask
        spb = self.llc_spb
        ways = self.llc_ways
        base_lat = self._base_lat
        l1_lat = self._l1_lat
        l12_lat = self._l12_lat
        data_lat = self._data_lat
        d_map = self.d_map
        d_addr = self.d_addr
        d_sharers = self.d_sharers
        d_owner = self.d_owner
        d_nru = self.d_nru
        d_reloc = self.d_reloc
        d_slice = self.d_slice_size
        d_sets = self.d_sets
        d_ways = self.d_ways
        d_vcount = self.d_vcount
        dir_set_bits = self._dir_set_bits
        dir_set_mask = self._dir_set_mask
        d_spill_addrs = self.d_spill_addrs
        d_spill_free = self.d_spill_free
        zerodev = self._zerodev
        ziv = self._ziv
        inclusive = self.inclusive
        refresh = self._refresh
        victim = self._victim
        install = self._install
        pol = self.policy_name
        pol_lru = pol == "lru"
        pol_srrip = pol == "srrip"
        baseline_install = not ziv  # inline install for inclusive/noninclusive
        dch_mask = self._dram_ch_mask
        dch_shift = self._dram_ch_shift
        dbpc = self._dram_bpc
        dbk_mask = self._dram_bank_mask
        dbk_shift = self._dram_bank_shift
        drow_bits = self._dram_row_bits
        dram_hit = self._dram_hit
        dram_miss = self._dram_miss
        dram_conflict = self._dram_conflict
        dram_busy = self._dram_busy
        dram_open = self._dram_open
        dram_ready = self._dram_ready
        l1_ways = l1s[0].ways
        l2_ways = l2s[0].ways

        # -- per-record decode columns, memoised on the trace --------------
        if profiler is not None:
            profiler.enter("decode")
        decode_key = (
            self.config.core.base_cpi, bank_mask, bank_bits, set_mask,
            spb, ways, d_sets, d_ways, dir_set_bits, dir_set_mask,
            l1s[0].set_mask, l1_ways, l2s[0].set_mask, l2_ways,
            dch_mask, dch_shift, dbpc, dbk_mask, dbk_shift, drow_bits,
            tuple(base_lat),
        )
        cols_t = []
        instr_t = []  # whole-trace instruction count: sum(gap + 1)
        trace_ends = []
        for core, t in enumerate(workload):
            memo = getattr(t, "_fast_cols", None)
            if memo is None:
                memo = {}
                t._fast_cols = memo
            entry = memo.get((decode_key, core))
            if entry is None:
                entry = self._decode_trace(t.records, core)
                memo[(decode_key, core)] = entry
            cols_t.append(entry[0])
            instr_t.append(entry[1])
            trace_ends.append(len(entry[0]))
        if profiler is not None:
            profiler.exit("decode")

        # -- per-path tallies (every stats/energy field derives from
        # these at the flush; see the mapping there) -----------------------
        c_l1h = [0] * n_cores
        c_l2h = [0] * n_cores
        c_l2m = [0] * n_cores
        n_hit = 0  # inline LLC home hits
        n_fill = 0  # memory fills
        n_fwd = 0  # non-inclusive forward fills
        n_wb = 0  # dirty writebacks to DRAM (evict + notice paths)
        n_wb_in = 0  # writebacks absorbed by the LLC home copy
        n_notice = 0  # eviction notices handled inline

        heap = [(0, core, 0) for core, end in enumerate(trace_ends) if end]
        heapify(heap)
        finish = [0] * n_cores

        if profiler is not None:
            profiler.enter("access_loop")
        while heap:
            ready, core, idx = heappop(heap)
            (
                addr, is_write, off, lat, bank, sid, dsid,
                s2, b2, s1, b1, gb, row,
            ) = cols_t[core][idx]
            issue = ready + off

            # ---- access (fused) ------------------------------------------
            l1 = l1s[core]
            p = l1.map.get(addr, -1)
            if p >= 0:
                c_l1h[core] += 1
                extra = 0
                if is_write:
                    if not l1.dirty[p]:
                        extra = self._write_upgrade(core, addr)
                    l1.dirty[p] = True
                l1.clock += 1
                l1.stamp[p] = l1.clock
                latency = l1_lat + extra
            else:
                l2 = l2s[core]
                p = l2.map.get(addr, -1)
                if p >= 0:
                    c_l2h[core] += 1
                    extra = 0
                    if is_write:
                        if not l2.dirty[p]:
                            extra = self._write_upgrade(core, addr)
                        l2.dirty[p] = True
                    l2.clock += 1
                    l2.stamp[p] = l2.clock
                    # inline L1 fill (addr cannot be in L1 here: the L1
                    # lookup above missed and the upgrade fills nothing)
                    t1 = l1.tag
                    notice1 = None
                    if l1.vcount[s1] < l1_ways:
                        fp = t1.index(-1, b1, b1 + l1_ways)
                        l1.vcount[s1] += 1
                    else:
                        seg = l1.stamp[b1:b1 + l1_ways]
                        fp = b1 + seg.index(min(seg))
                        old_addr = t1[fp]
                        old_dirty = l1.dirty[fp]
                        del l1.map[old_addr]
                        lp = l2.map.get(old_addr, -1)
                        if lp >= 0:
                            if old_dirty:
                                l2.dirty[lp] = True
                        else:
                            notice1 = (old_addr, old_dirty)
                    t1[fp] = addr
                    l1.map[addr] = fp
                    l1.dirty[fp] = is_write
                    l1.clock += 1
                    l1.stamp[fp] = l1.clock
                    if notice1 is not None:
                        self._handle_notice(
                            core, notice1[0], notice1[1], issue
                        )
                    latency = l12_lat + extra
                else:
                    c_l2m[core] += 1
                    # ---- LLC access (fused) ------------------------------
                    dpos = d_map.get(addr, -1)
                    if 0 <= dpos < d_slice:
                        d_nru[dpos] = True
                    cbit = 1 << core
                    if dpos >= 0 and d_reloc[dpos] >= 0:
                        latency = self._relocated_hit(
                            core, addr, dpos, is_write, issue, lat
                        )
                    else:
                        hp = llc_map.get(addr, -1)
                        if hp >= 0 and not (llc_meta[hp] & 2):
                            # LLC home hit (rare on miss-dominated runs:
                            # delegate the tail to the per-access methods)
                            extra = 0
                            if dpos >= 0:
                                if is_write:
                                    if d_sharers[dpos] & ~cbit:
                                        extra = self._coherence_on_miss(
                                            core, addr, dpos, is_write, issue
                                        )
                                else:
                                    ow = d_owner[dpos]
                                    if ow >= 0 and ow != core:
                                        extra = self._coherence_on_miss(
                                            core, addr, dpos, is_write, issue
                                        )
                            if pol_lru:
                                llc_clock[bank] += 1
                                llc_stamp[hp] = llc_clock[bank]
                            elif pol_srrip:
                                llc_meta[hp] &= 0xF
                            else:
                                llc_meta[hp] |= 8
                            llc_meta[hp] &= ~4
                            if ziv:
                                refresh(hp // ways)
                            n_hit += 1
                            if dpos < 0:
                                dpos = self._dir_allocate(addr, issue)
                            d_sharers[dpos] |= cbit
                            if is_write:
                                d_owner[dpos] = core
                            self._fill_private(core, addr, is_write, issue)
                            latency = lat + data_lat + extra
                        elif dpos >= 0:
                            n_fwd += 1
                            if inclusive:
                                raise CoherenceError(
                                    f"inclusive LLC missed on a directory-"
                                    f"tracked block {addr:#x}"
                                )
                            latency = self._forward_fill(
                                core, addr, dpos, is_write, issue, lat
                            )
                        else:
                            # ---- memory fill (fused hot path) ------------
                            n_fill += 1
                            wait = dram_ready[gb] - issue
                            if wait < 0:
                                wait = 0
                            open_row = dram_open[gb]
                            if open_row == row:
                                dram_lat = wait + dram_hit
                            elif open_row < 0:
                                dram_lat = wait + dram_miss
                            else:
                                dram_lat = wait + dram_conflict
                            dram_open[gb] = row
                            dram_ready[gb] = issue + wait + dram_busy
                            if baseline_install:
                                ibase = sid * ways
                                if llc_vcount[sid] < ways:
                                    ip = llc_tag.index(-1, ibase,
                                                       ibase + ways)
                                    llc_vcount[sid] += 1
                                else:
                                    # evict + install: the victim's tag
                                    # and the set's valid count are
                                    # overwritten below, so neither is
                                    # reset here
                                    if pol_lru:
                                        seg = llc_stamp[ibase:ibase + ways]
                                        ip = ibase + seg.index(min(seg))
                                    else:
                                        ip = victim(ibase)
                                    vaddr = llc_tag[ip]
                                    if inclusive:
                                        vd = d_map.get(vaddr, -1)
                                        if 0 <= vd < d_slice:
                                            d_nru[vd] = True
                                        if vd >= 0 and d_sharers[vd]:
                                            self._back_invalidate(
                                                vaddr, issue
                                            )
                                    m = llc_meta[ip]
                                    del llc_map[vaddr]
                                    if m & 1:
                                        # dirty writeback: latency is
                                        # discarded, only bank state moves
                                        vrest = vaddr >> dch_shift
                                        vgb = ((vaddr & dch_mask) * dbpc
                                               + (vrest & dbk_mask))
                                        vw = dram_ready[vgb] - issue
                                        if vw < 0:
                                            vw = 0
                                        dram_open[vgb] = (
                                            (vrest >> dbk_shift) >> drow_bits
                                        )
                                        dram_ready[vgb] = (
                                            issue + vw + dram_busy
                                        )
                                        n_wb += 1
                                llc_tag[ip] = addr
                                llc_map[addr] = ip
                                if pol_lru:
                                    llc_meta[ip] = 0
                                    llc_clock[bank] += 1
                                    llc_stamp[ip] = llc_clock[bank]
                                elif pol_srrip:
                                    llc_meta[ip] = (_MAX_RRPV - 1) << 4
                                    llc_stamp[ip] = 0
                                else:
                                    llc_meta[ip] = 8
                                    llc_stamp[ip] = 0
                            else:
                                install(addr, issue)
                            # ---- directory allocate (fused) --------------
                            dbase = dsid * d_ways
                            dend = dbase + d_ways
                            displaced = None
                            if d_vcount[dsid] < d_ways:
                                dpos = d_addr.index(-1, dbase, dend)
                                d_vcount[dsid] += 1
                            else:
                                try:
                                    dpos = d_nru.index(False, dbase, dend)
                                except ValueError:
                                    d_nru[dbase:dend] = [False] * d_ways
                                    dpos = dbase
                                displaced = (
                                    d_addr[dpos],
                                    d_sharers[dpos],
                                    d_owner[dpos],
                                    d_reloc[dpos],
                                )
                                del d_map[d_addr[dpos]]
                            d_addr[dpos] = addr
                            d_sharers[dpos] = 0
                            d_owner[dpos] = -1
                            d_nru[dpos] = True
                            d_reloc[dpos] = -1
                            d_map[addr] = dpos
                            if displaced is not None:
                                if zerodev:
                                    self._spill(displaced)
                                else:
                                    self._handle_displaced(displaced, issue)
                            d_sharers[dpos] |= cbit
                            if is_write:
                                d_owner[dpos] = core
                            # ---- private fills (fused) -------------------
                            t2 = l2.tag
                            notice2 = None
                            if l2.vcount[s2] < l2_ways:
                                fp = t2.index(-1, b2, b2 + l2_ways)
                                l2.vcount[s2] += 1
                            else:
                                seg = l2.stamp[b2:b2 + l2_ways]
                                fp = b2 + seg.index(min(seg))
                                old_addr = t2[fp]
                                old_dirty = l2.dirty[fp]
                                del l2.map[old_addr]
                                lp = l1.map.get(old_addr, -1)
                                if lp >= 0:
                                    if old_dirty:
                                        l1.dirty[lp] = True
                                else:
                                    notice2 = (old_addr, old_dirty)
                            t2[fp] = addr
                            l2.map[addr] = fp
                            l2.dirty[fp] = is_write
                            l2.clock += 1
                            l2.stamp[fp] = l2.clock
                            t1 = l1.tag
                            notice1 = None
                            if l1.vcount[s1] < l1_ways:
                                fp = t1.index(-1, b1, b1 + l1_ways)
                                l1.vcount[s1] += 1
                            else:
                                seg = l1.stamp[b1:b1 + l1_ways]
                                fp = b1 + seg.index(min(seg))
                                old_addr = t1[fp]
                                old_dirty = l1.dirty[fp]
                                del l1.map[old_addr]
                                lp = l2.map.get(old_addr, -1)
                                if lp >= 0:
                                    if old_dirty:
                                        l2.dirty[lp] = True
                                else:
                                    notice1 = (old_addr, old_dirty)
                            t1[fp] = addr
                            l1.map[addr] = fp
                            l1.dirty[fp] = is_write
                            l1.clock += 1
                            l1.stamp[fp] = l1.clock
                            # ---- eviction notices (fused) ----------------
                            for notice in (notice2, notice1):
                                if notice is None:
                                    continue
                                naddr, ndirty = notice
                                n_notice += 1
                                nd = d_map.get(naddr, -1)
                                if nd < 0:
                                    raise CoherenceError(
                                        f"eviction notice for untracked "
                                        f"block {naddr:#x}"
                                    )
                                if nd < d_slice:
                                    d_nru[nd] = True
                                sh = d_sharers[nd] & ~cbit
                                d_sharers[nd] = sh
                                if d_owner[nd] == core:
                                    d_owner[nd] = -1
                                if sh:
                                    continue
                                rp = d_reloc[nd]
                                if rp >= 0:
                                    self._kill_relocated(
                                        rp, naddr, ndirty, issue
                                    )
                                    self._dir_free(naddr)
                                    continue
                                del d_map[naddr]
                                if nd >= d_slice:
                                    del d_spill_addrs[naddr]
                                    d_spill_free.append(nd)
                                else:
                                    d_vcount[nd // d_ways] -= 1
                                d_addr[nd] = -1
                                d_sharers[nd] = 0
                                d_owner[nd] = -1
                                d_nru[nd] = False
                                d_reloc[nd] = -1
                                hp2 = llc_map.get(naddr, -1)
                                if hp2 >= 0 and not (llc_meta[hp2] & 2):
                                    m2 = llc_meta[hp2] | 4
                                    if ndirty:
                                        m2 |= 1
                                        n_wb_in += 1
                                    llc_meta[hp2] = m2
                                    if ziv:
                                        refresh(hp2 // ways)
                                elif ndirty:
                                    nrest = naddr >> dch_shift
                                    ngb = ((naddr & dch_mask) * dbpc
                                           + (nrest & dbk_mask))
                                    nw = dram_ready[ngb] - issue
                                    if nw < 0:
                                        nw = 0
                                    dram_open[ngb] = (
                                        (nrest >> dbk_shift) >> drow_bits
                                    )
                                    dram_ready[ngb] = issue + nw + dram_busy
                                    n_wb += 1
                            latency = lat + dram_lat

            # ---- bookkeeping (port of Simulation._run_timing tail) -------
            idx += 1
            if idx < trace_ends[core]:
                heappush(heap, (issue + latency, core, idx))
            else:
                finish[core] = issue + latency

        # -- flush: derive every stats/energy field from the tallies -------
        # Inline paths tally one counter each; the full counter set
        # follows arithmetically (each access is exactly one of l1-hit /
        # l2-hit / llc-access, and the memory-fill path bumps the miss,
        # fill, DRAM-read and data-write counters in lockstep).
        if profiler is not None:
            profiler.exit("access_loop")
            profiler.enter("flush")
        core_stats = self._core_stats
        tot_acc = 0
        tot_l1h = 0
        tot_llc = 0
        for core in range(n_cores):
            l1h = c_l1h[core]
            l2h = c_l2h[core]
            l2m = c_l2m[core]
            acc = l1h + l2h + l2m
            tot_acc += acc
            tot_l1h += l1h
            tot_llc += l2m
            cs = core_stats[core]
            cs.accesses += acc
            cs.l1_hits += l1h
            cs.l1_misses += l2h + l2m
            cs.l2_hits += l2h
            cs.l2_misses += l2m
            cs.instructions += instr_t[core]
            if trace_ends[core]:
                cs.cycles = finish[core]
        stats = self.stats
        stats.llc_hits += n_hit
        stats.llc_misses += n_fill + n_fwd
        stats.llc_fills += n_fill
        stats.dram_reads += n_fill
        stats.dram_writes += n_wb
        stats.llc_writebacks_in += n_wb_in
        stats.llc_writebacks_out += n_wb
        stats.eviction_notices += n_notice
        energy = self.energy
        energy.l1_accesses += tot_acc
        energy.l2_accesses += tot_acc - tot_l1h
        energy.llc_tag_accesses += tot_llc
        energy.dir_accesses += tot_llc
        energy.llc_data_reads += n_hit
        energy.llc_data_writes += n_fill
        energy.dram_accesses += n_fill + n_wb
        if profiler is not None:
            profiler.exit("flush")
        return max(finish) if finish else 0

    # ------------------------------------------------------------ finalisation

    def finalize_stats(self) -> None:
        """Copy late-bound counters into the stats object (same contract
        as CacheHierarchy.finalize_stats)."""
        self.stats.directory_spills = self.spill_count
        scheme_stats = self.scheme.on_stats()
        pv_flips = scheme_stats.get("pv_flips")
        if pv_flips is not None:
            self.energy.pv_updates = pv_flips

    # ------------------------------------------------------------ diagnostics

    def audit_violations(self) -> list:
        """One full invariant-audit sweep (same checks as the object
        engine, run through the array views)."""
        from repro.sim.audit import audit_hierarchy

        return audit_hierarchy(self)
