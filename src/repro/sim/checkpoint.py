"""Checkpoint/resume of in-flight simulations.

A billion-access trace does not fit in one session (or one worker), so
:meth:`repro.sim.engine.Simulation.run` can serialise its complete state
at chunk boundaries and pick up exactly where it left off -- in another
process, on another day.  The contract is **bit-identical resumption**:
an interrupted-then-resumed run produces the same ``SimStats``, energy
ledger, telemetry series and audit report as an uninterrupted one
(``tests/test_checkpoint.py`` enforces this on both engines).

What a checkpoint holds, in one pickle so shared references survive:

* the **hierarchy** -- caches, directory, scheme, CHAR, policy objects
  (whose ``random.Random`` instances carry the RNG position), stats and
  the energy ledger;
* the **telemetry collector** and **invariant auditor**, mid-countdown,
  still referencing that same hierarchy object (pickle memoisation
  keeps the identity, so counter deltas stay exact across the seam);
* the **scheduler state** -- the timing mode's ready-heap and finish
  times, or the lockstep mode's ``(row, core)`` cursor -- captured at an
  access boundary where replaying the remaining records is fully
  deterministic: heap entries are unique per core, so the pop order
  after re-heapify reproduces the uninterrupted order;
* the workload **fingerprint** and scheduling mode, checked on resume
  so a checkpoint can never continue onto different trace content.

Files are written atomically (temp + rename); a crash mid-save leaves
the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

CHECKPOINT_VERSION = 1

#: Magic prefix so a checkpoint is recognisable before unpickling.
_MAGIC = b"ZIVCKPT1\n"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied."""


class SimulationInterrupted(Exception):
    """Raised by :meth:`Simulation.run` when ``stop_after`` is reached.

    The run is *not* finished: its state was saved to
    ``checkpoint_path`` and the caller resumes with
    ``run(resume_from=...)``.  Carries enough to report progress."""

    def __init__(
        self, checkpoint_path, accesses_done: int, total_accesses: int
    ) -> None:
        super().__init__(
            f"simulation checkpointed at access {accesses_done}/"
            f"{total_accesses} -> {checkpoint_path}"
        )
        self.checkpoint_path = str(checkpoint_path)
        self.accesses_done = accesses_done
        self.total_accesses = total_accesses


@dataclass
class SimCheckpoint:
    """Complete mid-run simulation state (see module docstring)."""

    version: int
    workload_fingerprint: str
    scheduling: str
    accesses_done: int
    scheduler_state: dict
    hierarchy: Any
    auditor: Optional[Any] = None
    collector: Optional[Any] = None

    def validate(self, workload_fingerprint: str, scheduling: str) -> None:
        """Refuse to resume onto the wrong trace or scheduling mode."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {self.version} unsupported "
                f"(this build speaks {CHECKPOINT_VERSION})"
            )
        if self.workload_fingerprint != workload_fingerprint:
            raise CheckpointError(
                f"checkpoint was taken on workload "
                f"{self.workload_fingerprint[:12]}..., resume requested on "
                f"{workload_fingerprint[:12]}...; refusing to mix trace "
                f"contents"
            )
        if self.scheduling != scheduling:
            raise CheckpointError(
                f"checkpoint used {self.scheduling!r} scheduling, resume "
                f"requested {scheduling!r}"
            )


def save_checkpoint(path, checkpoint: SimCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path`` (temp + rename)."""
    if not isinstance(checkpoint, SimCheckpoint):
        raise CheckpointError(
            f"save_checkpoint wants a SimCheckpoint, got "
            f"{type(checkpoint).__name__}"
        )
    path = Path(path)
    directory = path.resolve().parent
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(_MAGIC)
            pickle.dump(checkpoint, f, protocol=pickle.HIGHEST_PROTOCOL)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path) -> SimCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        with open(path, "rb") as f:
            magic = f.read(len(_MAGIC))
            if magic != _MAGIC:
                raise CheckpointError(
                    f"{path}: not a simulation checkpoint (bad magic)"
                )
            ck = pickle.load(f)
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read ({exc})") from exc
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(
            f"{path}: corrupt or incompatible checkpoint ({exc})"
        ) from exc
    if not isinstance(ck, SimCheckpoint):
        raise CheckpointError(
            f"{path}: pickle holds {type(ck).__name__}, not SimCheckpoint"
        )
    return ck
