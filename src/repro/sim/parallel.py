"""Parallel execution layer with a persistent on-disk result cache.

Cache-simulation studies are embarrassingly parallel across runs: every
run is a deterministic function of its *recipe* (configuration, scheme,
LLC policy, scheduling mode, workload) and shares no state with any other
run.  This module exploits that twice over:

* :func:`run_many` fans fully specified :class:`RunRecipe`\\ s out over a
  ``multiprocessing`` pool and merges the :class:`SimResult`\\ s back in
  submission order, so the output is bit-identical to a serial loop.

* Every completed recipe is stored in a **persistent result cache** under
  ``.repro_cache/`` keyed by a stable content hash of the complete recipe
  (workload records included) plus a code-version tag.  A recipe that ever
  completed -- in any process, any session -- is never simulated again.

Environment knobs
-----------------
``REPRO_CACHE=off``       disable the disk cache (read *and* write)
``REPRO_CACHE_DIR=path``  relocate the cache (default ``./.repro_cache``)
``REPRO_MP_START=method`` multiprocessing start method (default: ``fork``
                          where available, else ``spawn``; the worker is
                          spawn-safe either way)

Invalidation
------------
Keys embed :data:`CACHE_VERSION`.  Bump it whenever a change alters
simulation *outcomes* (counters, timing, replacement behaviour); pure
refactors and speedups keep it.  ``python -m repro cache clear`` wipes the
cache manually.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.params import SystemConfig
from repro.sim.engine import SimResult, Simulation
from repro.sim.trace import Workload

#: Version tag baked into every cache key.  Bump on any change that
#: alters simulation outcomes; stale entries then miss instead of lying.
#: "2": SimResult grew the ``audit`` field (invariant-audit reports);
#: audit settings ride the config and thus the key, so audited and
#: unaudited runs never alias.
#: "3": SimResult grew the ``telemetry`` field; pre-telemetry pickles
#: would deserialise without the attribute.
#: "4": SystemConfig grew the ``engine`` field (object vs fast array
#: engine); pre-field configs hash without it, so results from either
#: engine must never alias entries keyed before the field existed.
#: "5": recipes may carry a TraceRef (path + content fingerprint) in
#: place of an in-memory workload.  The fingerprint preimage is shared
#: (binary headers replicate Workload.fingerprint exactly), which is
#: only sound now that streamed and in-memory runs are enforced
#: bit-identical -- entries keyed before that guarantee must not alias.
#: "6": SimResult grew the ``profile`` field (phase-profiler output) and
#: SystemConfig the ``profile`` section; pre-profile pickles would
#: deserialise without the attribute, and profiled runs must never
#: alias entries keyed before the section joined the hash preimage.
CACHE_VERSION = "6"

_DEFAULT_CACHE_DIR = ".repro_cache"


# ---------------------------------------------------------------------------
# Recipes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class RunRecipe:
    """A fully specified, picklable simulation run.

    Carries everything a worker process needs to rebuild the hierarchy
    from scratch: the (frozen, picklable) :class:`SystemConfig`, the
    scheme/policy names plus keyword arguments as sorted item tuples, the
    scheduling mode, and the workload itself.  ``policy="belady"`` recipes
    must use ``scheduling="lockstep"``; the worker rebuilds the next-use
    oracle from the workload's canonical lock-step stream.

    ``workload`` may instead be a :class:`~repro.sim.tracebin.TraceRef`:
    the recipe then pickles as a path + content fingerprint (no records
    shipped to workers), the fingerprint joins the cache key exactly as
    an in-memory workload's would, and :meth:`execute` opens -- and
    fingerprint-verifies -- the trace in the executing process.
    """

    workload: Workload
    scheme: str
    config: SystemConfig
    policy: str = "lru"
    scheduling: str = "timing"
    scheme_kwargs: tuple = ()
    policy_kwargs: tuple = ()

    def describe(self) -> str:
        """Canonical JSON description -- the hash preimage of :meth:`key`."""
        from repro.config_io import config_to_dict

        return json.dumps(
            {
                "version": CACHE_VERSION,
                "workload": self.workload.fingerprint(),
                "scheme": self.scheme,
                "policy": self.policy,
                "scheduling": self.scheduling,
                "scheme_kwargs": list(self.scheme_kwargs),
                "policy_kwargs": list(self.policy_kwargs),
                "config": config_to_dict(self.config),
            },
            sort_keys=True,
        )

    def key(self) -> str:
        """Stable content hash identifying this recipe across processes,
        sessions and machines (cached after the first call)."""
        cached = getattr(self, "_key", None)
        if cached is None:
            cached = hashlib.sha256(self.describe().encode()).hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    def execute(self) -> SimResult:
        """Run the simulation this recipe describes (no caching)."""
        from repro.hierarchy.cmp import CacheHierarchy
        from repro.schemes import make_scheme
        from repro.sim.tracebin import resolve_workload

        workload = resolve_workload(self.workload)
        try:
            if self.config.engine == "fast":
                from repro.sim.fast import FastHierarchy

                fast_hierarchy = FastHierarchy(
                    self.config,
                    self.scheme,
                    llc_policy=self.policy,
                    scheme_kwargs=dict(self.scheme_kwargs) or None,
                    policy_kwargs=dict(self.policy_kwargs) or None,
                )
                return Simulation(
                    fast_hierarchy,
                    workload,
                    scheduling=self.scheduling,
                    llc_policy_name=self.policy,
                    audit=self.config.audit,
                    telemetry=self.config.telemetry,
                ).run()
            oracle = None
            if self.policy == "belady":
                oracle = _oracle_for(workload)
            scheme = make_scheme(self.scheme, **dict(self.scheme_kwargs))
            hierarchy = CacheHierarchy(
                self.config,
                scheme,
                llc_policy=self.policy,
                oracle=oracle,
                policy_kwargs=dict(self.policy_kwargs) or None,
            )
            sim = Simulation(
                hierarchy,
                workload,
                scheduling=self.scheduling,
                llc_policy_name=self.policy,
                # Audit/telemetry settings come from the config (and
                # therefore from the cache key) alone: the REPRO_AUDIT/
                # REPRO_TELEMETRY environment variables must never be
                # consulted inside a worker, or an instrumented result
                # could be stored under an uninstrumented key.
                audit=self.config.audit,
                telemetry=self.config.telemetry,
            )
            return sim.run()
        finally:
            if workload is not self.workload:
                workload.close()


def make_recipe(
    workload: Workload,
    scheme: str,
    policy: str = "lru",
    scheduling: str = "timing",
    config: Optional[SystemConfig] = None,
    l2: str = "256KB",
    llc_scale: int = 1,
    cores: int = 8,
    directory_mode: str = "mesi",
    directory_factor: float = 2.0,
    scheme_kwargs: Optional[dict] = None,
    policy_kwargs: Optional[dict] = None,
    audit=None,
    telemetry=None,
) -> RunRecipe:
    """Build a :class:`RunRecipe` with the same defaults the experiment
    modules use.

    ``config`` wins when given; otherwise a scaled configuration is built
    from the ``l2``/``cores``/directory knobs.  ``policy="belady"``
    forces lock-step scheduling (the MIN oracle is only defined on the
    canonical lock-step stream, paper footnote 2).

    ``audit`` (AuditParams or a spec string, default: the ``REPRO_AUDIT``
    environment variable, else the config's own ``audit`` section) is
    resolved *here*, at recipe-construction time, and baked into the
    config -- and therefore into the recipe's cache key.  ``telemetry``
    (TelemetryParams or a spec string, default: ``REPRO_TELEMETRY``, else
    the config's ``telemetry`` section) is resolved the same way."""
    from repro.params import scaled_config
    from repro.sim.audit import resolve_audit
    from repro.sim.telemetry import resolve_telemetry

    if config is None:
        config = scaled_config(
            l2,
            cores=cores,
            directory_mode=directory_mode,
            directory_factor=directory_factor,
            llc_scale=llc_scale,
        )
    audit_params = resolve_audit(audit, config.audit)
    if audit_params != config.audit:
        config = config.replace(audit=audit_params)
    telemetry_params = resolve_telemetry(telemetry, config.telemetry)
    if telemetry_params != config.telemetry:
        config = config.replace(telemetry=telemetry_params)
    if policy == "belady":
        scheduling = "lockstep"
    return RunRecipe(
        workload=workload,
        scheme=scheme,
        config=config,
        policy=policy,
        scheduling=scheduling,
        scheme_kwargs=tuple(sorted((scheme_kwargs or {}).items())),
        policy_kwargs=tuple(sorted((policy_kwargs or {}).items())),
    )


# ---------------------------------------------------------------------------
# In-process memo + next-use-oracle memo
# ---------------------------------------------------------------------------

_MEMO: dict = {}  # recipe key -> SimResult
_ORACLE_MEMO: dict = {}  # workload fingerprint -> NextUseOracle


def _oracle_for(workload: Workload):
    from repro.cache.replacement import NextUseOracle
    from repro.sim.trace import lockstep_stream

    fp = workload.fingerprint()
    oracle = _ORACLE_MEMO.get(fp)
    if oracle is None:
        oracle = _ORACLE_MEMO[fp] = NextUseOracle(lockstep_stream(workload))
    return oracle


def clear_memo() -> None:
    """Drop the in-process memo (the disk cache is untouched)."""
    _MEMO.clear()
    _ORACLE_MEMO.clear()


# ---------------------------------------------------------------------------
# Persistent disk cache
# ---------------------------------------------------------------------------


def cache_enabled() -> bool:
    """The disk cache is on unless REPRO_CACHE is off/0/false/no."""
    return os.environ.get("REPRO_CACHE", "on").strip().lower() not in (
        "off", "0", "false", "no",
    )


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_CACHE_DIR)


def _cache_path(key: str) -> Path:
    return cache_dir() / f"{key}.pkl"


def load_result(key: str) -> Optional[SimResult]:
    """Fetch one result from disk; a corrupt/unreadable entry is dropped
    and reported as a miss."""
    path = _cache_path(key)
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store_result(key: str, result: SimResult) -> None:
    """Atomically persist one result (tmp file + rename, so concurrent
    writers of the same key are safe)."""
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, _cache_path(key))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def cache_info() -> dict:
    """Summary of the disk cache: location, entry count, total bytes."""
    directory = cache_dir()
    entries = 0
    size = 0
    if directory.is_dir():
        for p in directory.glob("*.pkl"):
            entries += 1
            try:
                size += p.stat().st_size
            except OSError:
                pass
    return {
        "path": str(directory.resolve()),
        "enabled": cache_enabled(),
        "entries": entries,
        "bytes": size,
    }


def clear_result_cache() -> int:
    """Delete every cached result; returns the number of entries removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for p in directory.glob("*.pkl"):
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
    return removed


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def lookup_result(key: str) -> "Optional[tuple[SimResult, str]]":
    """Resolve one recipe key through the *storage* layers only: the
    in-process memo, then (when enabled) the disk cache.  Returns
    ``(result, source)`` with source ``"memo"`` or ``"disk"``, or None
    on a miss.  No simulation, no ledger append -- callers that resolve
    a submission through this layer own the provenance record (see
    :func:`record_resolution`).  Disk hits are promoted into the memo."""
    result = _MEMO.get(key)
    if result is not None:
        return result, "memo"
    if cache_enabled():
        result = load_result(key)
        if result is not None:
            _MEMO[key] = result
            return result, "disk"
    return None


def publish_result(key: str, result: SimResult) -> None:
    """Write one completed result back to both storage layers (the
    in-process memo always, the disk cache when enabled)."""
    _MEMO[key] = result
    if cache_enabled():
        store_result(key, result)


def fetch_or_run(recipe: RunRecipe) -> SimResult:
    """Resolve one recipe through the cache layers: in-process memo, then
    disk, then a fresh (serial) simulation.  Completed runs are written
    back to both layers."""
    return _fetch_with_source(recipe)[0]


def _fetch_with_source(recipe: RunRecipe) -> "tuple[SimResult, str]":
    """:func:`fetch_or_run` plus provenance: which layer resolved the
    recipe (``"memo"``, ``"disk"`` or ``"run"``), for progress
    heartbeats.  Every resolution -- cache hit or fresh -- appends one
    record to the run ledger (:mod:`repro.obs.ledger`)."""
    key = recipe.key()
    hit = lookup_result(key)
    if hit is not None:
        result, source = hit
        _ledger_append(recipe, key, result, source, 0.0)
        return result, source
    # Wall time feeds the ledger record only (observability, never a
    # SimResult), so the clock reads are suppressed like the
    # ProgressTracker's.
    t0 = time.perf_counter()  # repro-lint: ignore[determinism]
    result = recipe.execute()
    wall_s = time.perf_counter() - t0  # repro-lint: ignore[determinism]
    publish_result(key, result)
    _ledger_append(recipe, key, result, "run", wall_s)
    return result, "run"


def record_resolution(
    recipe: RunRecipe,
    key: str,
    result: SimResult,
    source: str,
    wall_s: float,
) -> None:
    """Append the run-ledger provenance record for one resolved
    submission (best-effort, parent-process only).  The public seam for
    resolution layers built on :func:`lookup_result`/
    :func:`publish_result` -- the simulation service records exactly one
    ``"run"`` per fresh execution and one ``"memo"``/``"disk"`` per
    deduplicated or cache-resolved submission through this call."""
    _ledger_append(recipe, key, result, source, wall_s)


def _ledger_append(
    recipe: RunRecipe,
    key: str,
    result: SimResult,
    source: str,
    wall_s: float,
) -> None:
    """Append one run-ledger record; best-effort (the ledger must never
    fail a run), and only ever called in the parent process -- pool
    workers return their wall time instead, so each resolution is
    recorded exactly once."""
    try:
        from repro.obs.ledger import (
            append_record,
            ledger_enabled,
            record_from_result,
        )

        if not ledger_enabled():
            return
        append_record(record_from_result(
            recipe_key=key,
            result=result,
            source=source,
            wall_s=wall_s,
            config=recipe.config,
            workload_fingerprint=recipe.workload.fingerprint(),
            scheduling=recipe.scheduling,
            trace_path=str(getattr(recipe.workload, "path", "") or ""),
            resumed_from="",
        ))
    except Exception:
        pass


def _execute_recipe(
    item: "tuple[str, RunRecipe]",
) -> "tuple[str, SimResult, float]":
    """Pool worker: rebuild the hierarchy from the pickled recipe and run.

    Module-level (not a closure) so it imports cleanly under the ``spawn``
    start method.  Returns ``(key, result, wall_s)``: the wall time rides
    back to the parent, which owns all ledger appends (workers never
    touch the ledger, so each resolution is recorded exactly once)."""
    key, recipe = item
    t0 = time.perf_counter()  # repro-lint: ignore[determinism]
    result = recipe.execute()
    wall_s = time.perf_counter() - t0  # repro-lint: ignore[determinism]
    return key, result, wall_s


def _start_method() -> str:
    wanted = os.environ.get("REPRO_MP_START")
    available = multiprocessing.get_all_start_methods()
    if wanted:
        if wanted not in available:
            raise ValueError(
                f"REPRO_MP_START={wanted!r} not available; "
                f"choose from {available}"
            )
        return wanted
    return "fork" if "fork" in available else "spawn"


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: None/1 -> serial, 0 or negative ->
    one worker per CPU."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_many(
    recipes: Sequence[RunRecipe],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    labels: Optional[Sequence[str]] = None,
    heartbeat=None,
) -> list[SimResult]:
    """Run every recipe, in parallel when ``jobs`` allows, and return the
    results in submission order.

    Duplicate recipes (same key) are simulated once and shared; recipes
    already present in the memo or disk cache are not re-run.  With
    ``jobs`` > 1 the misses fan out over a process pool -- the workers are
    pure functions of their recipe, so the merged output is byte-identical
    to the serial path.  ``jobs=None`` (or 1) runs serially in-process;
    ``jobs<=0`` means one worker per CPU.

    ``progress`` (if given) is called with a short label -- ``labels[i]``
    when provided, else the recipe's scheme/policy/workload -- as each
    submitted recipe is resolved.

    ``heartbeat`` (if given) receives one
    :class:`~repro.sim.telemetry.RunProgress` per resolved recipe with
    cache-provenance counts, simulated accesses/second and a pessimistic
    ETA (e.g. a :class:`~repro.sim.telemetry.ProgressPrinter`).  Cache
    hits heartbeat as they resolve; fresh simulations heartbeat as each
    completes."""
    from repro.sim.telemetry import ProgressTracker

    n_jobs = resolve_jobs(jobs)
    tracker = (
        ProgressTracker(len(recipes), n_jobs) if heartbeat is not None
        else None
    )

    def label_of(i: int, recipe: RunRecipe) -> str:
        if labels is not None:
            return labels[i]
        return f"{recipe.scheme}/{recipe.policy}: {recipe.workload.name}"

    keys = [r.key() for r in recipes]
    if n_jobs <= 1:
        out = []
        for i, recipe in enumerate(recipes):
            if progress is not None:
                progress(label_of(i, recipe))
            result, source = _fetch_with_source(recipe)
            if tracker is not None:
                heartbeat(tracker.advance(label_of(i, recipe), source,
                                          result, key=keys[i],
                                          engine=recipe.config.engine))
            out.append(result)
        return out

    # Resolve what we can from the caches; collect unique misses.
    pending: dict[str, RunRecipe] = {}
    pending_label: dict[str, str] = {}
    for i, (recipe, key) in enumerate(zip(recipes, keys)):
        if key in pending:
            continue
        hit = lookup_result(key)
        if hit is not None:
            cached, source = hit
            _ledger_append(recipe, key, cached, source, 0.0)
            if tracker is not None:
                heartbeat(tracker.advance(label_of(i, recipe), source,
                                          cached, key=key,
                                          engine=recipe.config.engine))
            continue
        pending[key] = recipe
        pending_label[key] = label_of(i, recipe)
    if tracker is not None:
        # Duplicates of pending misses resolve for free at merge time;
        # account for them so completed counts reach the total.
        seen: set = set()
        for recipe, key in zip(recipes, keys):
            if key in pending and key in seen:
                heartbeat(tracker.advance(pending_label[key], "memo", None,
                                          key=key,
                                          engine=recipe.config.engine))
            seen.add(key)

    if pending:
        items = list(pending.items())
        if len(items) == 1:
            completed = [_execute_recipe(items[0])]
        else:
            ctx = multiprocessing.get_context(_start_method())
            with ctx.Pool(processes=min(n_jobs, len(items))) as pool:
                completed = pool.imap(_execute_recipe, items)
                results = []
                for key, result, wall_s in completed:
                    results.append((key, result, wall_s))
                    _ledger_append(pending[key], key, result, "run", wall_s)
                    if tracker is not None:
                        heartbeat(tracker.advance(
                            pending_label[key], "run", result, key=key,
                            engine=pending[key].config.engine,
                        ))
                completed = results
        if len(items) == 1:
            key, result, wall_s = completed[0]
            _ledger_append(pending[key], key, result, "run", wall_s)
            if tracker is not None:
                heartbeat(tracker.advance(pending_label[key], "run", result,
                                          key=key,
                                          engine=pending[key].config.engine))
        for key, result, _wall_s in completed:
            publish_result(key, result)

    out = []
    for i, (recipe, key) in enumerate(zip(recipes, keys)):
        if progress is not None:
            progress(label_of(i, recipe))
        out.append(_MEMO[key])
    return out
