"""Trace (de)serialisation.

Workloads are reproducible from their seeds, but downstream users often
want to run the simulator on *their own* traces (e.g. converted from Pin,
DynamoRIO or ChampSim traces, as the paper does for TPC-E).  This module
defines a minimal gzip'd text format, one record per line:

    core gap addr rw pc      (all integers; rw is 0/1; addr in blocks)

with ``#``-prefixed header lines carrying the workload and per-core trace
names.
"""

from __future__ import annotations

import gzip
from pathlib import Path

from repro.sim.trace import CoreTrace, TraceRecord, Workload


class TraceFormatError(ValueError):
    """Raised when a trace file does not parse."""


def save_workload(workload: Workload, path) -> None:
    """Write ``workload`` to ``path`` (gzip text)."""
    path = Path(path)
    with gzip.open(path, "wt") as f:
        f.write(f"# workload {workload.name}\n")
        for core, trace in enumerate(workload):
            f.write(f"# core {core} {trace.name}\n")
        for core, trace in enumerate(workload):
            for r in trace:
                f.write(
                    f"{core} {r.gap} {r.addr} {int(r.is_write)} {r.pc}\n"
                )


def load_workload(path) -> Workload:
    """Read a workload written by :func:`save_workload` (or hand-made in
    the same format)."""
    path = Path(path)
    name = path.stem
    core_names: dict[int, str] = {}
    records: dict[int, list[TraceRecord]] = {}
    with gzip.open(path, "rt") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if parts and parts[0] == "workload" and len(parts) > 1:
                    name = parts[1]
                elif parts and parts[0] == "core" and len(parts) >= 3:
                    core_names[int(parts[1])] = parts[2]
                continue
            parts = line.split()
            if len(parts) != 5:
                raise TraceFormatError(
                    f"{path}:{line_no}: expected 5 fields, got {len(parts)}"
                )
            try:
                core, gap, addr, rw, pc = (int(p) for p in parts)
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: non-integer field"
                ) from exc
            if core < 0 or gap < 0 or addr < 0 or rw not in (0, 1):
                raise TraceFormatError(
                    f"{path}:{line_no}: field out of range"
                )
            records.setdefault(core, []).append(
                TraceRecord(gap, addr, bool(rw), pc)
            )
    if not records:
        raise TraceFormatError(f"{path}: no records")
    cores = sorted(records)
    if cores != list(range(len(cores))):
        raise TraceFormatError(
            f"{path}: core ids must be dense from 0, got {cores}"
        )
    traces = [
        CoreTrace(records[c], core_names.get(c, f"core{c}")) for c in cores
    ]
    return Workload(traces, name=name)
