"""Trace (de)serialisation: the gzip **text** format.

Workloads are reproducible from their seeds, but downstream users often
want to run the simulator on *their own* traces (e.g. converted from Pin,
DynamoRIO or ChampSim traces, as the paper does for TPC-E).  This module
defines a minimal gzip'd text format, one record per line:

    core gap addr rw pc      (all integers; rw is 0/1; addr in blocks)

with ``#``-prefixed header lines carrying the workload and per-core trace
names.  A ``# core`` header with no matching records declares an *empty*
core trace, so workloads containing idle cores round-trip exactly.

Name resolution
---------------
The workload name comes from the ``# workload`` header when one is
present; otherwise it defaults to the file name with the conventional
trace suffixes stripped (``foo.trace.gz`` -> ``foo``, ``foo.gz`` ->
``foo``), computed by :func:`default_workload_name`.  ``save_workload``
always writes the header, so files produced by this module never depend
on the fallback.

For traces too large to materialise, see :mod:`repro.sim.tracebin` --
the chunked binary format with memory-mapped streaming readers;
``repro trace convert`` turns files in this text format into it.
"""

from __future__ import annotations

import gzip
import zlib
from pathlib import Path
from typing import Iterator, Union

from repro.sim.trace import CoreTrace, TraceRecord, Workload


class TraceFormatError(ValueError):
    """Raised when a trace file does not parse."""


#: Suffixes stripped (right to left, each at most once) when deriving a
#: workload name from a file name.
_NAME_SUFFIXES = (".gz", ".txt", ".trace")


def default_workload_name(path) -> str:
    """Workload name implied by a trace file name.

    Strips the conventional compression/format suffixes so that
    ``foo.trace.gz``, ``foo.trace`` and ``foo.gz`` all name the workload
    ``foo``.  Used by :func:`load_workload` (and the binary importers)
    whenever the file carries no explicit ``# workload`` header."""
    name = Path(path).name
    for suffix in _NAME_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            name = name[: -len(suffix)]
    return name


def save_workload(workload: Workload, path) -> None:
    """Write ``workload`` to ``path`` (gzip text)."""
    path = Path(path)
    with gzip.open(path, "wt") as f:
        f.write(f"# workload {workload.name}\n")
        for core, trace in enumerate(workload):
            f.write(f"# core {core} {trace.name}\n")
        for core, trace in enumerate(workload):
            for r in trace:
                f.write(
                    f"{core} {r.gap} {r.addr} {int(r.is_write)} {r.pc}\n"
                )


#: Events yielded by :func:`scan_workload`.
ScanEvent = Union[
    tuple[str, str],                     # ("workload", name)
    tuple[str, int, str],                # ("core", id, name)
    tuple[str, int, TraceRecord],        # ("record", core, record)
]


def scan_workload(path) -> Iterator[ScanEvent]:
    """Stream-parse a text trace, one event per meaningful line.

    Yields ``("workload", name)`` for the workload header, ``("core",
    core_id, name)`` for core headers and ``("record", core_id, record)``
    for data lines, in file order -- without ever holding more than one
    line in memory.  :func:`load_workload` and the binary importer
    (:func:`repro.sim.tracebin.convert_text_trace`) share this scanner,
    so both enforce identical syntax.

    Corrupt input -- a file that is not gzip, a truncated stream, or
    bytes that do not decode as text -- raises :class:`TraceFormatError`
    naming the path, never a raw :class:`gzip.BadGzipFile` /
    :class:`EOFError` / :class:`UnicodeDecodeError`.
    """
    path = Path(path)
    try:
        with gzip.open(path, "rt") as f:
            for line_no, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    parts = line[1:].split()
                    if parts and parts[0] == "workload" and len(parts) > 1:
                        yield ("workload", parts[1])
                    elif parts and parts[0] == "core" and len(parts) >= 2:
                        try:
                            core_id = int(parts[1])
                        except ValueError as exc:
                            raise TraceFormatError(
                                f"{path}:{line_no}: non-integer core id in "
                                f"header"
                            ) from exc
                        name = parts[2] if len(parts) >= 3 else f"core{core_id}"
                        yield ("core", core_id, name)
                    continue
                parts = line.split()
                if len(parts) != 5:
                    raise TraceFormatError(
                        f"{path}:{line_no}: expected 5 fields, got "
                        f"{len(parts)}"
                    )
                try:
                    core, gap, addr, rw, pc = (int(p) for p in parts)
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_no}: non-integer field"
                    ) from exc
                if core < 0 or gap < 0 or addr < 0 or rw not in (0, 1):
                    raise TraceFormatError(
                        f"{path}:{line_no}: field out of range"
                    )
                yield ("record", core, TraceRecord(gap, addr, bool(rw), pc))
    except (
        gzip.BadGzipFile, EOFError, UnicodeDecodeError, zlib.error,
    ) as exc:
        raise TraceFormatError(
            f"{path}: corrupt or truncated trace "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def load_workload(path) -> Workload:
    """Read a workload written by :func:`save_workload` (or hand-made in
    the same format).

    The ``# workload`` header names the workload when present; otherwise
    the name falls back to :func:`default_workload_name`.  A ``# core``
    header with no records yields an empty :class:`CoreTrace`, so
    workloads containing idle cores round-trip exactly."""
    path = Path(path)
    name = default_workload_name(path)
    core_names: dict[int, str] = {}
    records: dict[int, list[TraceRecord]] = {}
    for event in scan_workload(path):
        kind = event[0]
        if kind == "workload":
            name = event[1]
        elif kind == "core":
            core_names[event[1]] = event[2]
            records.setdefault(event[1], [])
        else:
            records.setdefault(event[1], []).append(event[2])
    if not records:
        raise TraceFormatError(f"{path}: no records")
    cores = sorted(records)
    if cores != list(range(len(cores))):
        raise TraceFormatError(
            f"{path}: core ids must be dense from 0, got {cores}"
        )
    traces = [
        CoreTrace(records[c], core_names.get(c, f"core{c}")) for c in cores
    ]
    return Workload(traces, name=name)
