"""Runtime ZIV invariant auditor.

The whole point of the ZIV LLC is an *invariant*: an inclusive LLC that
never produces inclusion victims while keeping every relocated block
reachable through its directory entry (paper III-C/III-D).  The scattered
``ZIVInvariantError`` raise sites catch some corruptions at the moment
they would be exploited; this module validates the invariants from first
principles, independently of the hot-path bookkeeping, so a silent
property-vector staleness or directory-tuple bug cannot quietly corrupt
results (and, since PR 1, get cached and replayed forever).

Invariants checked (each produces structured :class:`AuditViolation`\\ s):

``inclusion``     every privately cached address is resident in the LLC,
                  possibly via its relocation tuple (inclusive schemes)
``directory``     every ``Relocated`` directory entry's ``<bank, set,
                  way>`` points at a valid LLC block with the matching
                  address, and every relocated LLC block has a directory
                  entry pointing back at it; ``NotInPrC`` flags agree
                  with the directory
``pv``            each :class:`PropertyVector` bit equals a naive
                  recomputation of its set's property, and the decoded
                  ``nextRS`` agrees with the linear-scan reference
                  (ZIV schemes)
``ziv-zero-victim``  schemes advertising ``zero_inclusion_victims``
                  report LLC-eviction back-invalidation counts of
                  exactly zero
``conservation``  directory occupancy equals the number of distinct
                  privately cached addresses, with per-core sharer bits
                  matching the private caches exactly

The checks are side-effect free: directory lookups go through
:meth:`~repro.coherence.sparse_directory.SparseDirectory.peek` (no NRU
update) and only read block state.

Configuration travels as :class:`repro.params.AuditParams` inside
:class:`~repro.params.SystemConfig` -- which makes audit settings part of
the parallel runner's recipe cache key -- and can be spelled as a compact
string (``--audit=end,fail`` on the CLI, ``REPRO_AUDIT=100`` in the
environment); see :func:`parse_audit_spec`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.properties import compute_property
from repro.params import AuditParams, ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hierarchy.cmp import CacheHierarchy

#: Canonical invariant names, as reported in violations.
INVARIANT_NAMES = (
    "inclusion",
    "directory",
    "pv",
    "ziv-zero-victim",
    "conservation",
)


@dataclass(frozen=True)
class AuditViolation:
    """One detected invariant violation.

    ``bank``/``set_idx``/``way``/``addr``/``core`` are -1 when not
    applicable; ``access_index`` is the global access position of the
    audit sweep that caught the violation (-1 for the end-of-run sweep).
    """

    invariant: str
    detail: str
    expected: str = ""
    actual: str = ""
    addr: int = -1
    bank: int = -1
    set_idx: int = -1
    way: int = -1
    core: int = -1
    access_index: int = -1

    def __str__(self) -> str:
        loc = []
        if self.bank >= 0:
            loc.append(f"bank={self.bank}")
        if self.set_idx >= 0:
            loc.append(f"set={self.set_idx}")
        if self.way >= 0:
            loc.append(f"way={self.way}")
        if self.core >= 0:
            loc.append(f"core={self.core}")
        if self.addr >= 0:
            loc.append(f"addr={self.addr:#x}")
        where = f" [{' '.join(loc)}]" if loc else ""
        ea = (
            f" (expected {self.expected}, actual {self.actual})"
            if self.expected or self.actual
            else ""
        )
        at = f" @access {self.access_index}" if self.access_index >= 0 else ""
        return f"{self.invariant}: {self.detail}{where}{ea}{at}"


class AuditError(RuntimeError):
    """Raised in fail-fast mode on the first violating audit sweep."""

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message, violations)
        self.violations = list(violations)

    def __str__(self) -> str:
        return self.args[0]


@dataclass
class AuditReport:
    """Outcome of all audit sweeps of one simulation run."""

    params: AuditParams
    violations: list[AuditViolation] = field(default_factory=list)
    sweeps: int = 0
    truncated: bool = False  # hit params.max_violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"audit: OK ({self.sweeps} sweep(s), 0 violations)"
        head = (
            f"audit: {len(self.violations)} violation(s)"
            f"{' [truncated]' if self.truncated else ''} "
            f"over {self.sweeps} sweep(s)"
        )
        return "\n".join([head] + [f"  {v}" for v in self.violations])


# ---------------------------------------------------------------------------
# Spec parsing / resolution
# ---------------------------------------------------------------------------

#: Environment variable holding a default audit spec (see parse_audit_spec).
AUDIT_ENV_VAR = "REPRO_AUDIT"

_OFF_TOKENS = ("off", "none", "false", "no", "disabled")


def parse_audit_spec(spec: Optional[str]) -> AuditParams:
    """Parse a compact audit spec string into :class:`AuditParams`.

    The spec is a comma-separated token list:

    * ``end`` (or empty) -- end-of-run sweep only (the default cadence)
    * ``every`` / ``all`` -- sweep after every access
    * an integer ``N`` -- sweep after every N-th access (``0`` == ``end``)
    * ``fail`` -- fail-fast: raise :class:`AuditError` on first violation
    * ``collect`` -- collect-and-continue (the default mode)
    * ``off`` -- auditing disabled

    Examples: ``"end,fail"``, ``"100"``, ``"every,fail"``, ``"off"``.
    """
    if spec is None:
        return AuditParams()
    interval = 0
    fail_fast = False
    enabled = True
    for raw in spec.split(","):
        token = raw.strip().lower()
        if not token or token in ("end", "final"):
            interval = 0
        elif token in ("every", "all", "each"):
            interval = 1
        elif token in ("fail", "failfast", "fail-fast", "raise"):
            fail_fast = True
        elif token == "collect":
            fail_fast = False
        elif token in _OFF_TOKENS:
            enabled = False
        elif token.lstrip("+").isdigit():
            interval = int(token)
        else:
            raise ConfigError(
                f"bad audit spec token {token!r}; expected 'end', 'every', "
                f"an integer interval, 'fail', 'collect' or 'off'"
            )
    return AuditParams(
        enabled=enabled, interval=interval, fail_fast=fail_fast
    )


def audit_params_from_env() -> Optional[AuditParams]:
    """:class:`AuditParams` from the ``REPRO_AUDIT`` environment variable,
    or None when the variable is unset/empty."""
    spec = os.environ.get(AUDIT_ENV_VAR)
    if spec is None or not spec.strip():
        return None
    return parse_audit_spec(spec)


def resolve_audit(
    explicit, config_audit: Optional[AuditParams] = None
) -> AuditParams:
    """Resolve the audit settings for one run.

    Precedence: an explicit argument (an :class:`AuditParams` or a spec
    string) wins; else the ``REPRO_AUDIT`` environment variable; else the
    configuration's own ``audit`` field (default: disabled)."""
    if explicit is not None:
        if isinstance(explicit, AuditParams):
            return explicit
        if isinstance(explicit, str):
            return parse_audit_spec(explicit)
        raise TypeError(
            f"audit must be AuditParams or a spec string, "
            f"got {type(explicit).__name__}"
        )
    env = audit_params_from_env()
    if env is not None:
        return env
    return config_audit if config_audit is not None else AuditParams()


# ---------------------------------------------------------------------------
# Individual invariant checks (side-effect free, return violation lists)
# ---------------------------------------------------------------------------


def check_inclusion(h: "CacheHierarchy") -> list[AuditViolation]:
    """Invariant 1: every privately cached address is LLC-resident, either
    in its home set or through its relocation tuple.

    The check itself is unconditional; :func:`audit_hierarchy` applies it
    only to inclusive schemes (a non-inclusive LLC violates it by
    design)."""
    out: list[AuditViolation] = []
    llc = h.llc
    directory = h.directory
    for core, priv in enumerate(h.private):
        for addr in priv.resident_addrs():
            if llc.probe(addr) >= 0:
                continue
            entry = directory.peek(addr)
            if entry is None:
                out.append(AuditViolation(
                    invariant="inclusion",
                    detail="privately cached block absent from LLC and "
                           "untracked by the directory",
                    expected="LLC-resident", actual="absent",
                    addr=addr, core=core,
                ))
                continue
            if not entry.relocated:
                out.append(AuditViolation(
                    invariant="inclusion",
                    detail="privately cached block has no LLC copy and a "
                           "non-Relocated directory entry",
                    expected="home copy or Relocated entry",
                    actual="neither",
                    addr=addr, core=core,
                ))
                continue
            blk = _reloc_block(llc, entry)
            if blk is None or not blk.relocated or blk.addr != addr:
                out.append(AuditViolation(
                    invariant="inclusion",
                    detail="relocation tuple of a privately cached block "
                           "does not reach a matching relocated LLC block",
                    expected=f"relocated block {addr:#x}",
                    actual=_describe_block(blk),
                    addr=addr, core=core,
                    bank=entry.reloc_bank, set_idx=entry.reloc_set,
                    way=entry.reloc_way,
                ))
    return out


def check_directory(h: "CacheHierarchy") -> list[AuditViolation]:
    """Invariant 2: directory <-> relocated-block coherence, both ways,
    plus ``NotInPrC`` flag exactness against the directory."""
    out: list[AuditViolation] = []
    llc = h.llc
    geom = llc.geometry

    # Forward: every Relocated entry points at a matching relocated block,
    # and the home set holds no shadowing non-relocated copy.
    for entry in h.directory.iter_valid():
        if not entry.relocated:
            continue
        b, s, w = entry.reloc_bank, entry.reloc_set, entry.reloc_way
        if not (0 <= b < geom.banks and 0 <= s < geom.sets_per_bank
                and 0 <= w < geom.ways):
            out.append(AuditViolation(
                invariant="directory",
                detail="relocation tuple out of range",
                expected=f"bank<{geom.banks} set<{geom.sets_per_bank} "
                         f"way<{geom.ways}",
                actual=f"({b},{s},{w})",
                addr=entry.addr, bank=b, set_idx=s, way=w,
            ))
            continue
        blk = llc.block(b, s, w)
        if not blk.valid or not blk.relocated or blk.addr != entry.addr:
            out.append(AuditViolation(
                invariant="directory",
                detail="stale relocation tuple: pointed-at LLC block does "
                       "not match the directory entry",
                expected=f"valid relocated block {entry.addr:#x}",
                actual=_describe_block(blk),
                addr=entry.addr, bank=b, set_idx=s, way=w,
            ))
        if llc.probe(entry.addr) >= 0:
            out.append(AuditViolation(
                invariant="directory",
                detail="Relocated entry coexists with a non-relocated "
                       "home-set copy",
                expected="no home-set copy", actual="home-set copy present",
                addr=entry.addr, bank=llc.bank_of(entry.addr),
                set_idx=llc.set_of(entry.addr),
            ))

    # Reverse: every relocated LLC block is reachable from its entry, and
    # NotInPrC flags are exact w.r.t. the directory.
    for b, cache in enumerate(llc.banks):
        for s, ways in enumerate(cache.blocks):
            for w, blk in enumerate(ways):
                if not blk.valid:
                    continue
                entry = h.directory.peek(blk.addr)
                cached = entry is not None and entry.sharers != 0
                if blk.relocated:
                    if (entry is None or not entry.relocated
                            or (entry.reloc_bank, entry.reloc_set,
                                entry.reloc_way) != (b, s, w)):
                        out.append(AuditViolation(
                            invariant="directory",
                            detail="relocated LLC block has no directory "
                                   "entry pointing back at it",
                            expected=f"Relocated entry -> ({b},{s},{w})",
                            actual=_describe_entry(entry),
                            addr=blk.addr, bank=b, set_idx=s, way=w,
                        ))
                    if not cached:
                        out.append(AuditViolation(
                            invariant="directory",
                            detail="relocated LLC block outlived its last "
                                   "private copy",
                            expected="sharers != 0", actual="no sharers",
                            addr=blk.addr, bank=b, set_idx=s, way=w,
                        ))
                elif blk.not_in_prc == cached:
                    out.append(AuditViolation(
                        invariant="directory",
                        detail="NotInPrC flag disagrees with the directory",
                        expected=f"not_in_prc={not cached}",
                        actual=f"not_in_prc={blk.not_in_prc}",
                        addr=blk.addr, bank=b, set_idx=s, way=w,
                    ))
    return out


def check_pv(h: "CacheHierarchy") -> list[AuditViolation]:
    """Invariant 3: each property-vector bit equals the naive
    recomputation of its set's property, and the decoded ``nextRS``
    equals the linear-scan reference.  Applies to schemes carrying a
    :class:`~repro.core.properties.PropertyTracker` (the ZIV variants)."""
    out: list[AuditViolation] = []
    tracker = getattr(h.scheme, "tracker", None)
    if tracker is None:
        return out
    llc = h.llc
    for bank in range(llc.geometry.banks):
        cache = llc.banks[bank]
        max_rrpv = cache.policy.max_rrpv
        for prop in tracker.properties:
            pv = tracker.pvs[bank][prop]
            for set_idx in range(llc.geometry.sets_per_bank):
                expected = compute_property(
                    cache.blocks[set_idx], prop, max_rrpv
                )
                actual = pv.get_bit(set_idx)
                if actual != expected:
                    out.append(AuditViolation(
                        invariant="pv",
                        detail=f"stale {prop} property bit",
                        expected=str(expected), actual=str(actual),
                        bank=bank, set_idx=set_idx,
                    ))
            naive = pv.naive_peek()
            decoded = pv.peek_relocation_set()
            if decoded != naive:
                out.append(AuditViolation(
                    invariant="pv",
                    detail=f"decoded nextRS of {prop} disagrees with the "
                           f"naive round-robin scan",
                    expected=str(naive), actual=str(decoded),
                    bank=bank,
                ))
    return out


def check_ziv_zero_victims(h: "CacheHierarchy") -> list[AuditViolation]:
    """Invariant 4: a scheme advertising ``zero_inclusion_victims`` must
    report zero LLC-eviction back-invalidations and inclusion victims.
    (Sparse-directory evictions are a separate mechanism, paper III-F.)"""
    out: list[AuditViolation] = []
    if not getattr(h.scheme, "zero_inclusion_victims", False):
        return out
    s = h.stats
    for counter in ("back_invalidations_llc", "inclusion_victims_llc"):
        value = getattr(s, counter)
        if value:
            out.append(AuditViolation(
                invariant="ziv-zero-victim",
                detail=f"ZIV run reported nonzero {counter}",
                expected="0", actual=str(value),
            ))
    return out


def check_conservation(h: "CacheHierarchy") -> list[AuditViolation]:
    """Invariant 5: the directory tracks exactly the privately cached
    addresses -- occupancy matches, and every sharer bit matches the
    owning core's private caches."""
    out: list[AuditViolation] = []
    tracked = {e.addr: e for e in h.directory.iter_valid()}
    resident: dict[int, int] = {}  # addr -> core bitmask, from the caches
    for core, priv in enumerate(h.private):
        for addr in priv.resident_addrs():
            resident[addr] = resident.get(addr, 0) | (1 << core)
    for addr in resident.keys() - tracked.keys():
        out.append(AuditViolation(
            invariant="conservation",
            detail="privately cached block untracked by the directory",
            expected="directory entry", actual="none",
            addr=addr,
        ))
    for addr in tracked.keys() - resident.keys():
        out.append(AuditViolation(
            invariant="conservation",
            detail="directory entry for a block with no private copies",
            expected="no entry",
            actual=f"sharers={tracked[addr].sharers:b}",
            addr=addr,
        ))
    for addr, entry in tracked.items():
        mask = resident.get(addr)
        if mask is not None and mask != entry.sharers:
            out.append(AuditViolation(
                invariant="conservation",
                detail="sharer bitvector disagrees with private caches",
                expected=f"sharers={mask:b}",
                actual=f"sharers={entry.sharers:b}",
                addr=addr,
            ))
    occupancy = h.directory.occupancy()
    if occupancy != len(resident):
        out.append(AuditViolation(
            invariant="conservation",
            detail="directory occupancy differs from the number of "
                   "distinct privately cached addresses",
            expected=str(len(resident)), actual=str(occupancy),
        ))
    return out


def audit_hierarchy(h: "CacheHierarchy") -> list[AuditViolation]:
    """Run every applicable invariant check once; returns all violations
    (uncapped).  The one-shot entry point for tests and diagnostics."""
    return (
        (check_inclusion(h) if h.scheme.inclusive else [])
        + check_directory(h)
        + check_pv(h)
        + check_ziv_zero_victims(h)
        + check_conservation(h)
    )


def _reloc_block(llc, entry):
    geom = llc.geometry
    b, s, w = entry.reloc_bank, entry.reloc_set, entry.reloc_way
    if not (0 <= b < geom.banks and 0 <= s < geom.sets_per_bank
            and 0 <= w < geom.ways):
        return None
    return llc.block(b, s, w)


def _describe_block(blk) -> str:
    if blk is None:
        return "out-of-range tuple"
    if not blk.valid:
        return "invalid block"
    kind = "relocated" if blk.relocated else "normal"
    return f"{kind} block {blk.addr:#x}"


def _describe_entry(entry) -> str:
    if entry is None:
        return "no entry"
    if not entry.relocated:
        return "non-Relocated entry"
    return (
        f"entry -> ({entry.reloc_bank},{entry.reloc_set},{entry.reloc_way})"
    )


# ---------------------------------------------------------------------------
# The auditor driven by the simulation engine
# ---------------------------------------------------------------------------


class InvariantAuditor:
    """Samples the invariant checks over a simulation run.

    The engine calls :meth:`maybe_check` after every completed access
    (state is consistent between the atomic transactions) and
    :meth:`finalize` after the run; ``fail_fast`` raises
    :class:`AuditError` from the first violating sweep."""

    def __init__(self, hierarchy: "CacheHierarchy",
                 params: AuditParams) -> None:
        self.hierarchy = hierarchy
        self.params = params
        self.report = AuditReport(params=params)
        self._countdown = params.interval

    def maybe_check(self, access_index: int) -> None:
        """Periodic hook: sweeps every ``interval`` accesses."""
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.params.interval
        self.sweep(access_index)

    def sweep(self, access_index: int = -1) -> list[AuditViolation]:
        """One full pass over every applicable invariant."""
        self.report.sweeps += 1
        found = audit_hierarchy(self.hierarchy)
        if not found:
            return found
        stamped = [
            AuditViolation(**{**_as_kwargs(v), "access_index": access_index})
            for v in found
        ]
        room = self.params.max_violations - len(self.report.violations)
        if len(stamped) > room:
            self.report.truncated = True
        self.report.violations.extend(stamped[:max(0, room)])
        if self.params.fail_fast:
            raise AuditError(
                f"invariant audit failed with {len(stamped)} violation(s) "
                f"at access {access_index}:\n"
                + "\n".join(f"  {v}" for v in stamped[:10]),
                tuple(stamped),
            )
        return stamped

    def finalize(self) -> AuditReport:
        """End-of-run sweep (always runs) and the final report."""
        self.sweep(-1)
        return self.report


def _as_kwargs(v: AuditViolation) -> dict:
    return {
        "invariant": v.invariant, "detail": v.detail,
        "expected": v.expected, "actual": v.actual,
        "addr": v.addr, "bank": v.bank, "set_idx": v.set_idx,
        "way": v.way, "core": v.core, "access_index": v.access_index,
    }
