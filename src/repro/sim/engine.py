"""The simulation driver.

Two scheduling modes:

* ``"timing"`` (default) -- each core is an in-order front end: gap
  instructions retire at the configured base CPI, then the memory access
  blocks for its hierarchy latency.  Cores interleave by readiness (the
  core with the smallest next-ready cycle issues next), which makes shared
  LLC/DRAM contention order realistic.

* ``"lockstep"`` -- cores interleave round-robin by access *index*,
  ignoring latencies.  This is the canonical global stream that defines
  the Belady MIN oracle (paper footnote 2): the interleaving must not
  depend on the LLC policy under study, otherwise MIN is ill-defined.
  Used for the Fig. 2 inclusion-victim counts.

Each core replays its trace once ("the representative segment"); as in the
paper, statistics cover exactly one pass of every trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.audit import AuditReport, InvariantAuditor, resolve_audit
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    SimCheckpoint,
    SimulationInterrupted,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.stats import SimStats
from repro.sim.telemetry import (
    StreamProgress,
    TelemetryCollector,
    TelemetryResult,
    resolve_telemetry,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.energy.model import EnergyModel
from repro.sim.trace import Workload


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Carries the statistics, the energy ledger, any scheme-specific
    extras (e.g. the ZIV relocation-interval histogram) and the invariant
    audit report (when auditing was enabled) -- but not the hierarchy
    itself, so results stay small enough to cache in bulk."""

    stats: SimStats
    cycles: int
    scheme: str
    policy: str
    workload: str
    energy: Optional["EnergyModel"] = None
    scheme_stats: Optional[dict] = None
    audit: Optional[AuditReport] = None
    telemetry: Optional[TelemetryResult] = None

    @property
    def ipc_per_core(self) -> list[float]:
        return [c.ipc for c in self.stats.cores]

    def core_cycles(self, core: int) -> int:
        return self.stats.cores[core].cycles


class Simulation:
    """Drives a workload through a :class:`CacheHierarchy`."""

    def __init__(
        self,
        hierarchy: "CacheHierarchy",
        workload: Workload,
        scheduling: str = "timing",
        llc_policy_name: Optional[str] = None,
        audit=None,
        telemetry=None,
    ) -> None:
        if scheduling not in ("timing", "lockstep"):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        if workload.cores != hierarchy.config.cores:
            raise ValueError(
                f"workload has {workload.cores} cores, hierarchy expects "
                f"{hierarchy.config.cores}"
            )
        self.hierarchy = hierarchy
        self.workload = workload
        self.scheduling = scheduling
        self.llc_policy_name = llc_policy_name or hierarchy.llc.policy_name
        # ``audit``: AuditParams or a spec string; defaults to the
        # hierarchy configuration's audit section (config.audit) so that
        # cached recipes and direct runs agree on whether they audit.
        self.audit_params = resolve_audit(audit, hierarchy.config.audit)
        # ``telemetry``: TelemetryParams or a spec string; same resolution
        # order (explicit > REPRO_TELEMETRY > config.telemetry).
        self.telemetry_params = resolve_telemetry(
            telemetry, hierarchy.config.telemetry
        )

    def run(
        self,
        *,
        checkpoint_path=None,
        checkpoint_every: Optional[int] = None,
        resume_from=None,
        stop_after: Optional[int] = None,
        progress=None,
    ) -> SimResult:
        """Run the workload to completion (or to a checkpoint).

        Streaming/checkpointing keywords (all optional; the plain
        ``run()`` call is unchanged):

        * ``checkpoint_path`` -- save a :class:`SimCheckpoint` here at
          every boundary (atomically; the previous one is replaced).
        * ``checkpoint_every`` -- boundary cadence in accesses.  Defaults
          to the workload's ``chunk_records`` (binary traces) or 65536.
        * ``resume_from`` -- a checkpoint path or :class:`SimCheckpoint`
          to continue from; the workload fingerprint and scheduling mode
          must match.  The resumed run is bit-identical to an
          uninterrupted one.
        * ``stop_after`` -- interrupt at the first boundary at or beyond
          this many total accesses: state is saved to ``checkpoint_path``
          (required) and :class:`SimulationInterrupted` is raised.  Used
          to shard a long trace across sessions/workers.
        * ``progress`` -- callable receiving a
          :class:`~repro.sim.telemetry.StreamProgress` at every boundary.
        """
        if stop_after is not None and checkpoint_path is None:
            raise ValueError("stop_after requires checkpoint_path")
        if checkpoint_every is None:
            checkpoint_every = (
                getattr(self.workload, "chunk_records", 0) or 65536
            )
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        state = None
        if resume_from is not None:
            ck = (
                resume_from
                if isinstance(resume_from, SimCheckpoint)
                else load_checkpoint(resume_from)
            )
            ck.validate(self.workload.fingerprint(), self.scheduling)
            # The checkpoint's hierarchy/auditor/collector were pickled
            # together, so the collector still observes *this* hierarchy.
            self.hierarchy = ck.hierarchy
            auditor = ck.auditor
            collector = ck.collector
            state = ck.scheduler_state
        else:
            auditor = (
                InvariantAuditor(self.hierarchy, self.audit_params)
                if self.audit_params.enabled
                else None
            )
            collector = (
                TelemetryCollector(self.hierarchy, self.telemetry_params)
                if self.telemetry_params.enabled
                else None
            )
        audit_hook = (
            auditor.maybe_check
            if auditor is not None and auditor.params.interval > 0
            else None
        )
        telemetry_hook = None
        if collector is not None:
            collector.bind()
            telemetry_hook = collector.on_access
        boundary = None
        if (
            checkpoint_path is not None
            or stop_after is not None
            or progress is not None
        ):
            boundary = _BoundaryController(
                self,
                auditor,
                collector,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                stop_after=stop_after,
                progress=progress,
            )
        # The fast engine ships a fused batch driver (loop + access in one
        # frame, counters batched in locals).  It is only valid when no
        # per-access hook observes intermediate counter state and the
        # whole trace is materialisable (it decodes per-trace columns),
        # so it runs exactly when both hooks are absent, no boundary work
        # is requested, and the workload does not opt out via
        # ``supports_fused`` (streamed BinWorkloads do); results are
        # bit-identical either way.
        fused = getattr(self.hierarchy, "run_trace", None)
        if (
            fused is not None
            and self.scheduling == "timing"
            and audit_hook is None
            and telemetry_hook is None
            and boundary is None
            and state is None
            and getattr(self.workload, "supports_fused", True)
        ):
            cycles = fused(self.workload)
        elif self.scheduling == "timing":
            cycles = self._run_timing(
                audit_hook, telemetry_hook, state, boundary, checkpoint_every
            )
        else:
            cycles = self._run_lockstep(
                audit_hook, telemetry_hook, state, boundary, checkpoint_every
            )
        self.hierarchy.finalize_stats()
        report = auditor.finalize() if auditor is not None else None
        telemetry_result = (
            collector.finalize(self.hierarchy.stats.total_accesses)
            if collector is not None
            else None
        )
        return SimResult(
            stats=self.hierarchy.stats,
            cycles=cycles,
            scheme=self.hierarchy.scheme.name,
            policy=self.llc_policy_name,
            workload=self.workload.name,
            energy=self.hierarchy.energy,
            scheme_stats=self.hierarchy.scheme.on_stats(),
            audit=report,
            telemetry=telemetry_result,
        )

    # -- timing mode ------------------------------------------------------------

    def _run_timing(
        self,
        audit_hook=None,
        telemetry_hook=None,
        state=None,
        boundary=None,
        boundary_every: int = 65536,
    ) -> int:
        h = self.hierarchy
        base_cpi = h.config.core.base_cpi
        # Hot loop: every per-access attribute lookup is hoisted into a
        # local; the heap functions and the access method dominate.
        access = h.access
        core_stats = h.stats.cores
        heappush = heapq.heappush
        heappop = heapq.heappop
        traces = [t.records for t in self.workload]
        trace_ends = [len(t) for t in traces]
        if state is None:
            # (ready_cycle, core, next_index) min-heap.  Cores with an
            # empty trace never issue: they finish instantly with
            # cycles=0 and must not seed the heap (traces[core][0] would
            # raise).
            heap = [
                (0, core, 0) for core, end in enumerate(trace_ends) if end
            ]
            finish = [0] * self.workload.cores
            global_pos = 0
        else:
            # Entries are unique per core, so every pop has a unique
            # minimum: re-heapifying the saved entries replays exactly
            # the uninterrupted pop order.
            heap = [tuple(e) for e in state["heap"]]
            finish = list(state["finish"])
            global_pos = state["global_pos"]
        heapq.heapify(heap)
        countdown = boundary_every
        while heap:
            ready, core, idx = heappop(heap)
            rec = traces[core][idx]
            gap = rec.gap
            issue = ready + int(gap * base_cpi)
            if telemetry_hook is not None:
                telemetry_hook(global_pos)
            latency = access(
                core,
                rec.addr,
                rec.is_write,
                rec.pc,
                cycle=issue,
                global_pos=global_pos,
            )
            global_pos += 1
            if audit_hook is not None:
                audit_hook(global_pos - 1)
            done = issue + latency
            cs = core_stats[core]
            cs.instructions += gap + 1
            idx += 1
            if idx < trace_ends[core]:
                heappush(heap, (done, core, idx))
            else:
                finish[core] = done
                cs.cycles = done
            if boundary is not None:
                countdown -= 1
                if countdown == 0 and heap:
                    countdown = boundary_every
                    boundary(global_pos, {
                        "heap": list(heap),
                        "finish": list(finish),
                        "global_pos": global_pos,
                    })
        return max(finish) if finish else 0

    # -- lockstep mode -------------------------------------------------------------

    def _run_lockstep(
        self,
        audit_hook=None,
        telemetry_hook=None,
        state=None,
        boundary=None,
        boundary_every: int = 65536,
    ) -> int:
        h = self.hierarchy
        access = h.access
        core_stats = h.stats.cores
        # Indexed replay of the canonical lock-step order (round-robin by
        # access index -- see trace.interleave_records): the explicit
        # (row, core) cursor is what checkpoints capture.
        streams = [t.records for t in self.workload]
        lens = [len(s) for s in streams]
        cores = len(streams)
        longest = max(lens)
        if state is None:
            row, core, pos = 0, 0, 0
        else:
            row, core, pos = state["row"], state["core"], state["pos"]
        countdown = boundary_every
        while row < longest:
            while core < cores:
                if row < lens[core]:
                    rec = streams[core][row]
                    if telemetry_hook is not None:
                        telemetry_hook(pos)
                    access(
                        core,
                        rec.addr,
                        rec.is_write,
                        rec.pc,
                        cycle=pos,
                        global_pos=pos,
                    )
                    if audit_hook is not None:
                        audit_hook(pos)
                    core_stats[core].instructions += rec.gap + 1
                    pos += 1
                    if boundary is not None:
                        countdown -= 1
                        if countdown == 0:
                            countdown = boundary_every
                            boundary(pos, {
                                "row": row,
                                "core": core + 1,
                                "pos": pos,
                            })
                core += 1
            core = 0
            row += 1
        for cs in core_stats:
            cs.cycles = pos  # lockstep mode carries no timing meaning
        return pos


class _BoundaryController:
    """Boundary work for one run: checkpoint saves, heartbeats, stop.

    Called by the engine loops every ``checkpoint_every`` accesses with
    the accesses-done count and a picklable scheduler-state dict.  Order
    matters: the checkpoint is saved *before* a ``stop_after`` interrupt
    is raised, so the caller can always resume from the path it passed.
    """

    def __init__(
        self,
        sim: "Simulation",
        auditor,
        collector,
        *,
        checkpoint_path,
        checkpoint_every: int,
        stop_after: Optional[int],
        progress,
    ) -> None:
        self.sim = sim
        self.auditor = auditor
        self.collector = collector
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.stop_after = stop_after
        self.progress = progress
        self.total = sim.workload.total_accesses()
        self._fingerprint = sim.workload.fingerprint()

    def __call__(self, accesses_done: int, scheduler_state: dict) -> None:
        saved = False
        if self.checkpoint_path is not None:
            save_checkpoint(self.checkpoint_path, SimCheckpoint(
                version=CHECKPOINT_VERSION,
                workload_fingerprint=self._fingerprint,
                scheduling=self.sim.scheduling,
                accesses_done=accesses_done,
                scheduler_state=scheduler_state,
                hierarchy=self.sim.hierarchy,
                auditor=self.auditor,
                collector=self.collector,
            ))
            saved = True
        if self.progress is not None:
            every = self.checkpoint_every
            self.progress(StreamProgress(
                accesses_done=accesses_done,
                total_accesses=self.total,
                chunk=accesses_done // every,
                chunks=(self.total + every - 1) // every,
                checkpointed=saved,
            ))
        if (
            self.stop_after is not None
            and accesses_done >= self.stop_after
            and accesses_done < self.total
        ):
            raise SimulationInterrupted(
                self.checkpoint_path, accesses_done, self.total
            )


def run_workload(
    config,
    workload,
    scheme_name: str,
    llc_policy: str = "lru",
    scheduling: str = "timing",
    oracle=None,
    policy_kwargs: Optional[dict] = None,
    audit=None,
    telemetry=None,
    checkpoint_path=None,
    checkpoint_every: Optional[int] = None,
    resume_from=None,
    stop_after: Optional[int] = None,
    progress=None,
) -> SimResult:
    """Convenience one-call runner: build hierarchy + scheme, simulate.

    ``audit`` (AuditParams or a spec string like ``"end,fail"``) enables
    the invariant auditor; when omitted, the ``REPRO_AUDIT`` environment
    variable and then ``config.audit`` decide.  ``telemetry``
    (TelemetryParams or a spec string like ``"250,events=relocation"``)
    enables interval sampling/event tracing the same way, via
    ``REPRO_TELEMETRY`` and ``config.telemetry``.

    ``config.engine`` selects the implementation: ``"object"`` (default)
    builds the reference :class:`~repro.hierarchy.cmp.CacheHierarchy`;
    ``"fast"`` builds the array-state
    :class:`~repro.sim.fast.FastHierarchy`, which produces identical
    statistics (the differential harness enforces this) but does not
    support replacement oracles.

    ``workload`` may also be a :class:`~repro.sim.tracebin.TraceRef`
    (resolved -- and fingerprint-verified -- to a streaming
    :class:`~repro.sim.tracebin.BinWorkload` here), and the
    checkpoint/streaming keywords (``checkpoint_path``,
    ``checkpoint_every``, ``resume_from``, ``stop_after``, ``progress``)
    pass straight through to :meth:`Simulation.run`."""
    from repro.hierarchy.cmp import CacheHierarchy
    from repro.schemes import make_scheme
    from repro.sim.tracebin import resolve_workload

    workload = resolve_workload(workload)

    if getattr(config, "engine", "object") == "fast":
        from repro.sim.fast import FastHierarchy

        if oracle is not None:
            raise ValueError(
                "replacement oracles require the object engine; "
                "set engine='object' to use oracle="
            )
        hierarchy = FastHierarchy(
            config,
            scheme_name,
            llc_policy=llc_policy,
            policy_kwargs=policy_kwargs,
        )
    else:
        scheme = make_scheme(scheme_name)
        hierarchy = CacheHierarchy(
            config,
            scheme,
            llc_policy=llc_policy,
            oracle=oracle,
            policy_kwargs=policy_kwargs,
        )
    sim = Simulation(
        hierarchy,
        workload,
        scheduling=scheduling,
        llc_policy_name=llc_policy,
        audit=audit,
        telemetry=telemetry,
    )
    return sim.run(
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        resume_from=resume_from,
        stop_after=stop_after,
        progress=progress,
    )
