"""The simulation driver.

Two scheduling modes:

* ``"timing"`` (default) -- each core is an in-order front end: gap
  instructions retire at the configured base CPI, then the memory access
  blocks for its hierarchy latency.  Cores interleave by readiness (the
  core with the smallest next-ready cycle issues next), which makes shared
  LLC/DRAM contention order realistic.

* ``"lockstep"`` -- cores interleave round-robin by access *index*,
  ignoring latencies.  This is the canonical global stream that defines
  the Belady MIN oracle (paper footnote 2): the interleaving must not
  depend on the LLC policy under study, otherwise MIN is ill-defined.
  Used for the Fig. 2 inclusion-victim counts.

Each core replays its trace once ("the representative segment"); as in the
paper, statistics cover exactly one pass of every trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.profile import PhaseProfiler, ProfileResult, resolve_profile
from repro.sim.audit import AuditReport, InvariantAuditor, resolve_audit
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    SimCheckpoint,
    SimulationInterrupted,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.stats import SimStats
from repro.sim.telemetry import (
    StreamProgress,
    TelemetryCollector,
    TelemetryResult,
    resolve_telemetry,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.energy.model import EnergyModel
from repro.sim.trace import Workload


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Carries the statistics, the energy ledger, any scheme-specific
    extras (e.g. the ZIV relocation-interval histogram) and the invariant
    audit report (when auditing was enabled) -- but not the hierarchy
    itself, so results stay small enough to cache in bulk."""

    stats: SimStats
    cycles: int
    scheme: str
    policy: str
    workload: str
    energy: Optional["EnergyModel"] = None
    scheme_stats: Optional[dict] = None
    audit: Optional[AuditReport] = None
    telemetry: Optional[TelemetryResult] = None
    profile: Optional[ProfileResult] = None

    @property
    def ipc_per_core(self) -> list[float]:
        return [c.ipc for c in self.stats.cores]

    def core_cycles(self, core: int) -> int:
        return self.stats.cores[core].cycles


class Simulation:
    """Drives a workload through a :class:`CacheHierarchy`."""

    def __init__(
        self,
        hierarchy: "CacheHierarchy",
        workload: Workload,
        scheduling: str = "timing",
        llc_policy_name: Optional[str] = None,
        audit=None,
        telemetry=None,
        profile=None,
    ) -> None:
        if scheduling not in ("timing", "lockstep"):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        if workload.cores != hierarchy.config.cores:
            raise ValueError(
                f"workload has {workload.cores} cores, hierarchy expects "
                f"{hierarchy.config.cores}"
            )
        self.hierarchy = hierarchy
        self.workload = workload
        self.scheduling = scheduling
        self.llc_policy_name = llc_policy_name or hierarchy.llc.policy_name
        # ``audit``: AuditParams or a spec string; defaults to the
        # hierarchy configuration's audit section (config.audit) so that
        # cached recipes and direct runs agree on whether they audit.
        self.audit_params = resolve_audit(audit, hierarchy.config.audit)
        # ``telemetry``: TelemetryParams or a spec string; same resolution
        # order (explicit > REPRO_TELEMETRY > config.telemetry).
        self.telemetry_params = resolve_telemetry(
            telemetry, hierarchy.config.telemetry
        )
        # ``profile``: ProfileParams or a spec string ("on"/"off"); same
        # resolution order (explicit > REPRO_PROFILE > config.profile).
        self.profile_params = resolve_profile(
            profile, getattr(hierarchy.config, "profile", None)
        )

    def run(
        self,
        *,
        checkpoint_path=None,
        checkpoint_every: Optional[int] = None,
        resume_from=None,
        stop_after: Optional[int] = None,
        progress=None,
    ) -> SimResult:
        """Run the workload to completion (or to a checkpoint).

        Streaming/checkpointing keywords (all optional; the plain
        ``run()`` call is unchanged):

        * ``checkpoint_path`` -- save a :class:`SimCheckpoint` here at
          every boundary (atomically; the previous one is replaced).
        * ``checkpoint_every`` -- boundary cadence in accesses.  Defaults
          to the workload's ``chunk_records`` (binary traces) or 65536.
        * ``resume_from`` -- a checkpoint path or :class:`SimCheckpoint`
          to continue from; the workload fingerprint and scheduling mode
          must match.  The resumed run is bit-identical to an
          uninterrupted one.
        * ``stop_after`` -- interrupt at the first boundary at or beyond
          this many total accesses: state is saved to ``checkpoint_path``
          (required) and :class:`SimulationInterrupted` is raised.  Used
          to shard a long trace across sessions/workers.
        * ``progress`` -- callable receiving a
          :class:`~repro.sim.telemetry.StreamProgress` at every boundary.
        """
        if stop_after is not None and checkpoint_path is None:
            raise ValueError("stop_after requires checkpoint_path")
        if checkpoint_every is None:
            checkpoint_every = (
                getattr(self.workload, "chunk_records", 0) or 65536
            )
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        state = None
        if resume_from is not None:
            ck = (
                resume_from
                if isinstance(resume_from, SimCheckpoint)
                else load_checkpoint(resume_from)
            )
            ck.validate(self.workload.fingerprint(), self.scheduling)
            # The checkpoint's hierarchy/auditor/collector were pickled
            # together, so the collector still observes *this* hierarchy.
            self.hierarchy = ck.hierarchy
            auditor = ck.auditor
            collector = ck.collector
            state = ck.scheduler_state
        else:
            auditor = (
                InvariantAuditor(self.hierarchy, self.audit_params)
                if self.audit_params.enabled
                else None
            )
            collector = (
                TelemetryCollector(self.hierarchy, self.telemetry_params)
                if self.telemetry_params.enabled
                else None
            )
        # The phase profiler follows the telemetry discipline exactly:
        # the handle is None unless profiling was requested, every
        # engine-side use sits behind one ``is not None`` predicate
        # (enforced by the telemetry-guard lint rule), and the disabled
        # path therefore costs one check per phase transition -- never
        # per access.  Resumed runs profile their own leg only (phase
        # timers are wall-clock and are deliberately not checkpointed).
        profiler = (
            PhaseProfiler() if self.profile_params.enabled else None
        )
        audit_hook = (
            auditor.maybe_check
            if auditor is not None and auditor.params.interval > 0
            else None
        )
        telemetry_hook = None
        if collector is not None:
            collector.bind()
            telemetry_hook = collector.on_access
        if profiler is not None:
            # Per-access hook attribution: only the profiled run pays
            # the wrapper, the plain hook path is untouched.
            if audit_hook is not None:
                audit_hook = profiler.timed("audit", audit_hook)
            if telemetry_hook is not None:
                telemetry_hook = profiler.timed("telemetry",
                                                telemetry_hook)
        boundary = None
        if (
            checkpoint_path is not None
            or stop_after is not None
            or progress is not None
        ):
            boundary = _BoundaryController(
                self,
                auditor,
                collector,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                stop_after=stop_after,
                progress=progress,
            )
        # The fast engine ships a fused batch driver (loop + access in one
        # frame, counters batched in locals).  It is only valid when no
        # per-access hook observes intermediate counter state and the
        # whole trace is materialisable (it decodes per-trace columns),
        # so it runs exactly when both hooks are absent, no boundary work
        # is requested, and the workload does not opt out via
        # ``supports_fused`` (streamed BinWorkloads do); results are
        # bit-identical either way.
        fused = getattr(self.hierarchy, "run_trace", None)
        if (
            fused is not None
            and self.scheduling == "timing"
            and audit_hook is None
            and telemetry_hook is None
            and boundary is None
            and state is None
            and getattr(self.workload, "supports_fused", True)
        ):
            if profiler is not None:
                cycles = fused(self.workload, profiler=profiler)
            else:
                cycles = fused(self.workload)
        elif self.scheduling == "timing":
            cycles = self._run_timing(
                audit_hook, telemetry_hook, state, boundary,
                checkpoint_every, profiler,
            )
        else:
            cycles = self._run_lockstep(
                audit_hook, telemetry_hook, state, boundary,
                checkpoint_every, profiler,
            )
        if profiler is not None:
            profiler.enter("flush")
        self.hierarchy.finalize_stats()
        report = auditor.finalize() if auditor is not None else None
        telemetry_result = (
            collector.finalize(self.hierarchy.stats.total_accesses)
            if collector is not None
            else None
        )
        profile_result = None
        if profiler is not None:
            profiler.exit("flush")
            profile_result = profiler.finalize(
                engine=getattr(self.hierarchy, "engine_name", "object"),
                stats=self.hierarchy.stats,
                config=self.hierarchy.config,
            )
        return SimResult(
            stats=self.hierarchy.stats,
            cycles=cycles,
            scheme=self.hierarchy.scheme.name,
            policy=self.llc_policy_name,
            workload=self.workload.name,
            energy=self.hierarchy.energy,
            scheme_stats=self.hierarchy.scheme.on_stats(),
            audit=report,
            telemetry=telemetry_result,
            profile=profile_result,
        )

    # -- timing mode ------------------------------------------------------------

    def _run_timing(
        self,
        audit_hook=None,
        telemetry_hook=None,
        state=None,
        boundary=None,
        boundary_every: int = 65536,
        profiler=None,
    ) -> int:
        h = self.hierarchy
        base_cpi = h.config.core.base_cpi
        # Hot loop: every per-access attribute lookup is hoisted into a
        # local; the heap functions and the access method dominate.
        access = h.access
        core_stats = h.stats.cores
        heappush = heapq.heappush
        heappop = heapq.heappop
        if profiler is not None:
            profiler.enter("decode")
        traces = [t.records for t in self.workload]
        trace_ends = [len(t) for t in traces]
        if profiler is not None:
            profiler.exit("decode")
        if state is None:
            # (ready_cycle, core, next_index) min-heap.  Cores with an
            # empty trace never issue: they finish instantly with
            # cycles=0 and must not seed the heap (traces[core][0] would
            # raise).
            heap = [
                (0, core, 0) for core, end in enumerate(trace_ends) if end
            ]
            finish = [0] * self.workload.cores
            global_pos = 0
        else:
            # Entries are unique per core, so every pop has a unique
            # minimum: re-heapifying the saved entries replays exactly
            # the uninterrupted pop order.
            heap = [tuple(e) for e in state["heap"]]
            finish = list(state["finish"])
            global_pos = state["global_pos"]
        heapq.heapify(heap)
        countdown = boundary_every
        if profiler is not None:
            profiler.enter("access_loop")
        while heap:
            ready, core, idx = heappop(heap)
            rec = traces[core][idx]
            gap = rec.gap
            issue = ready + int(gap * base_cpi)
            if telemetry_hook is not None:
                telemetry_hook(global_pos)
            latency = access(
                core,
                rec.addr,
                rec.is_write,
                rec.pc,
                cycle=issue,
                global_pos=global_pos,
            )
            global_pos += 1
            if audit_hook is not None:
                audit_hook(global_pos - 1)
            done = issue + latency
            cs = core_stats[core]
            cs.instructions += gap + 1
            idx += 1
            if idx < trace_ends[core]:
                heappush(heap, (done, core, idx))
            else:
                finish[core] = done
                cs.cycles = done
            if boundary is not None:
                countdown -= 1
                if countdown == 0 and heap:
                    countdown = boundary_every
                    boundary(global_pos, {
                        "heap": list(heap),
                        "finish": list(finish),
                        "global_pos": global_pos,
                    })
        if profiler is not None:
            profiler.exit("access_loop")
        return max(finish) if finish else 0

    # -- lockstep mode -------------------------------------------------------------

    def _run_lockstep(
        self,
        audit_hook=None,
        telemetry_hook=None,
        state=None,
        boundary=None,
        boundary_every: int = 65536,
        profiler=None,
    ) -> int:
        h = self.hierarchy
        access = h.access
        core_stats = h.stats.cores
        # Indexed replay of the canonical lock-step order (round-robin by
        # access index -- see trace.interleave_records): the explicit
        # (row, core) cursor is what checkpoints capture.
        if profiler is not None:
            profiler.enter("decode")
        streams = [t.records for t in self.workload]
        lens = [len(s) for s in streams]
        if profiler is not None:
            profiler.exit("decode")
        cores = len(streams)
        longest = max(lens)
        if state is None:
            row, core, pos = 0, 0, 0
        else:
            row, core, pos = state["row"], state["core"], state["pos"]
        countdown = boundary_every
        if profiler is not None:
            profiler.enter("access_loop")
        while row < longest:
            while core < cores:
                if row < lens[core]:
                    rec = streams[core][row]
                    if telemetry_hook is not None:
                        telemetry_hook(pos)
                    access(
                        core,
                        rec.addr,
                        rec.is_write,
                        rec.pc,
                        cycle=pos,
                        global_pos=pos,
                    )
                    if audit_hook is not None:
                        audit_hook(pos)
                    core_stats[core].instructions += rec.gap + 1
                    pos += 1
                    if boundary is not None:
                        countdown -= 1
                        if countdown == 0:
                            countdown = boundary_every
                            boundary(pos, {
                                "row": row,
                                "core": core + 1,
                                "pos": pos,
                            })
                core += 1
            core = 0
            row += 1
        if profiler is not None:
            profiler.exit("access_loop")
        for cs in core_stats:
            cs.cycles = pos  # lockstep mode carries no timing meaning
        return pos


class _BoundaryController:
    """Boundary work for one run: checkpoint saves, heartbeats, stop.

    Called by the engine loops every ``checkpoint_every`` accesses with
    the accesses-done count and a picklable scheduler-state dict.  Order
    matters: the checkpoint is saved *before* a ``stop_after`` interrupt
    is raised, so the caller can always resume from the path it passed.
    """

    def __init__(
        self,
        sim: "Simulation",
        auditor,
        collector,
        *,
        checkpoint_path,
        checkpoint_every: int,
        stop_after: Optional[int],
        progress,
    ) -> None:
        self.sim = sim
        self.auditor = auditor
        self.collector = collector
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.stop_after = stop_after
        self.progress = progress
        self.total = sim.workload.total_accesses()
        self._fingerprint = sim.workload.fingerprint()

    def __call__(self, accesses_done: int, scheduler_state: dict) -> None:
        saved = False
        if self.checkpoint_path is not None:
            save_checkpoint(self.checkpoint_path, SimCheckpoint(
                version=CHECKPOINT_VERSION,
                workload_fingerprint=self._fingerprint,
                scheduling=self.sim.scheduling,
                accesses_done=accesses_done,
                scheduler_state=scheduler_state,
                hierarchy=self.sim.hierarchy,
                auditor=self.auditor,
                collector=self.collector,
            ))
            saved = True
        if self.progress is not None:
            every = self.checkpoint_every
            self.progress(StreamProgress(
                accesses_done=accesses_done,
                total_accesses=self.total,
                chunk=accesses_done // every,
                chunks=(self.total + every - 1) // every,
                checkpointed=saved,
                label=getattr(self.sim.workload, "name", ""),
                engine=getattr(self.sim.hierarchy, "engine_name", "object"),
            ))
        if (
            self.stop_after is not None
            and accesses_done >= self.stop_after
            and accesses_done < self.total
        ):
            raise SimulationInterrupted(
                self.checkpoint_path, accesses_done, self.total
            )


def run_workload(
    config,
    workload,
    scheme_name: str,
    llc_policy: str = "lru",
    scheduling: str = "timing",
    oracle=None,
    policy_kwargs: Optional[dict] = None,
    audit=None,
    telemetry=None,
    profile=None,
    checkpoint_path=None,
    checkpoint_every: Optional[int] = None,
    resume_from=None,
    stop_after: Optional[int] = None,
    progress=None,
) -> SimResult:
    """Convenience one-call runner: build hierarchy + scheme, simulate.

    ``audit`` (AuditParams or a spec string like ``"end,fail"``) enables
    the invariant auditor; when omitted, the ``REPRO_AUDIT`` environment
    variable and then ``config.audit`` decide.  ``telemetry``
    (TelemetryParams or a spec string like ``"250,events=relocation"``)
    enables interval sampling/event tracing the same way, via
    ``REPRO_TELEMETRY`` and ``config.telemetry``.  ``profile``
    (ProfileParams or ``"on"``/``"off"``) enables the phase profiler
    (``SimResult.profile``) the same way again, via ``REPRO_PROFILE``
    and ``config.profile``.

    Every completed call appends one provenance record to the run
    ledger (see :mod:`repro.obs.ledger`; ``REPRO_LEDGER=off`` opts
    out).  Interrupted runs (``stop_after`` checkpoints) do not
    append -- the resumed completion does, carrying its checkpoint
    lineage in ``resumed_from``.

    ``config.engine`` selects the implementation: ``"object"`` (default)
    builds the reference :class:`~repro.hierarchy.cmp.CacheHierarchy`;
    ``"fast"`` builds the array-state
    :class:`~repro.sim.fast.FastHierarchy`, which produces identical
    statistics (the differential harness enforces this) but does not
    support replacement oracles.

    ``workload`` may also be a :class:`~repro.sim.tracebin.TraceRef`
    (resolved -- and fingerprint-verified -- to a streaming
    :class:`~repro.sim.tracebin.BinWorkload` here), and the
    checkpoint/streaming keywords (``checkpoint_path``,
    ``checkpoint_every``, ``resume_from``, ``stop_after``, ``progress``)
    pass straight through to :meth:`Simulation.run`."""
    from repro.hierarchy.cmp import CacheHierarchy
    from repro.schemes import make_scheme
    from repro.sim.tracebin import resolve_workload

    workload = resolve_workload(workload)

    if getattr(config, "engine", "object") == "fast":
        from repro.sim.fast import FastHierarchy

        if oracle is not None:
            raise ValueError(
                "replacement oracles require the object engine; "
                "set engine='object' to use oracle="
            )
        hierarchy = FastHierarchy(
            config,
            scheme_name,
            llc_policy=llc_policy,
            policy_kwargs=policy_kwargs,
        )
    else:
        scheme = make_scheme(scheme_name)
        hierarchy = CacheHierarchy(
            config,
            scheme,
            llc_policy=llc_policy,
            oracle=oracle,
            policy_kwargs=policy_kwargs,
        )
    sim = Simulation(
        hierarchy,
        workload,
        scheduling=scheduling,
        llc_policy_name=llc_policy,
        audit=audit,
        telemetry=telemetry,
        profile=profile,
    )
    # Ledger wall time is observability-only (it feeds the JSONL record,
    # never the SimResult), so the wall-clock reads are suppressed like
    # the ProgressTracker's.
    import time as _time

    t0 = _time.perf_counter()  # repro-lint: ignore[determinism]
    result = sim.run(
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        resume_from=resume_from,
        stop_after=stop_after,
        progress=progress,
    )
    wall_s = _time.perf_counter() - t0  # repro-lint: ignore[determinism]
    _append_direct_ledger_record(
        sim, config, workload, llc_policy, policy_kwargs, oracle,
        result, wall_s, resume_from,
    )
    return result


def _append_direct_ledger_record(
    sim: Simulation,
    config,
    workload,
    llc_policy: str,
    policy_kwargs: Optional[dict],
    oracle,
    result: SimResult,
    wall_s: float,
    resume_from,
) -> None:
    """Record one completed :func:`run_workload` call in the run ledger.

    Best-effort by contract: any failure here is swallowed, because the
    ledger must never fail a run that already produced its result.  The
    recipe key is the *same* content hash ``run_many`` would use for an
    equivalent :class:`~repro.sim.parallel.RunRecipe` (with the resolved
    audit/telemetry/profile settings baked into the config), so direct
    runs and fleet runs of the same work share ledger identity; runs a
    recipe cannot express (custom oracles) get an empty key."""
    try:
        from repro.obs.ledger import (
            append_record,
            ledger_enabled,
            record_from_result,
        )

        if not ledger_enabled():
            return
        recipe_key = ""
        if oracle is None:
            from repro.sim.parallel import RunRecipe

            keyed_config = config.replace(
                audit=sim.audit_params,
                telemetry=sim.telemetry_params,
                profile=sim.profile_params,
            )
            recipe_key = RunRecipe(
                workload=workload,
                scheme=result.scheme,
                config=keyed_config,
                policy=llc_policy,
                scheduling=sim.scheduling,
                policy_kwargs=tuple(sorted((policy_kwargs or {}).items())),
            ).key()
        append_record(record_from_result(
            recipe_key=recipe_key,
            result=result,
            source="direct",
            wall_s=wall_s,
            config=config,
            workload_fingerprint=workload.fingerprint(),
            scheduling=sim.scheduling,
            trace_path=str(getattr(workload, "path", "") or ""),
            resumed_from=(
                "" if resume_from is None
                else "<checkpoint object>"
                if isinstance(resume_from, SimCheckpoint)
                else str(resume_from)
            ),
        ))
    except Exception:
        # Observability must never break the simulation result path.
        pass
