"""Human-readable reports over simulation results."""

from __future__ import annotations

from repro.sim.engine import SimResult
from repro.sim.metrics import mix_speedup


def describe_result(result: SimResult) -> str:
    """Multi-line summary of one run (the CLI's ``run`` output)."""
    s = result.stats
    lines = [
        f"workload      : {result.workload}",
        f"scheme/policy : {result.scheme} / {result.policy}",
        f"cycles        : {result.cycles}",
        f"instructions  : {s.total_instructions}",
        f"accesses      : {s.total_accesses}",
        f"LLC hits/miss : {s.llc_hits} / {s.llc_misses}",
        f"L2 misses     : {s.l2_misses}",
        (
            f"incl. victims : {s.inclusion_victims_llc} (LLC) + "
            f"{s.inclusion_victims_dir} (directory)"
        ),
        (
            f"relocations   : {s.relocations} "
            f"({s.relocation_same_set} resolved in-set, "
            f"{s.relocations_cross_bank} cross-bank)"
        ),
        f"DRAM reads/wr : {s.dram_reads} / {s.dram_writes}",
    ]
    if s.prefetches_issued:
        lines.append(
            f"prefetches    : {s.prefetches_issued} issued, "
            f"{s.prefetch_useful} useful"
        )
    if result.energy is not None:
        epi = result.energy.epi_pj(max(1, s.total_instructions))
        lines.append(f"energy        : {epi:.1f} pJ/instruction")
    if result.audit is not None:
        lines.append(
            f"audit         : {len(result.audit.violations)} violation(s) "
            f"over {result.audit.sweeps} sweep(s)"
            + (" [truncated]" if result.audit.truncated else "")
        )
    if result.telemetry is not None:
        t = result.telemetry
        lines.append(
            f"telemetry     : {len(t.series)} sample(s) at interval "
            f"{t.params.interval}"
            + (f", {t.series.dropped} dropped" if t.series.dropped else "")
        )
        if t.params.event_categories():
            lines.append(
                f"events        : {len(t.events)} traced "
                f"({'+'.join(t.params.event_categories())})"
                + (f", {t.dropped_events} dropped"
                   if t.dropped_events else "")
            )
    if result.profile is not None:
        lines.append(f"profile       : {result.profile.summary()}")
    return "\n".join(lines)


def compare_results(baseline: SimResult, candidate: SimResult) -> str:
    """Side-by-side delta report (candidate vs baseline)."""
    b, c = baseline.stats, candidate.stats

    def ratio(x, y):
        return f"{x / y:.3f}x" if y else "n/a"

    lines = [
        f"candidate {candidate.scheme}/{candidate.policy} "
        f"vs baseline {baseline.scheme}/{baseline.policy}",
        f"speedup        : {mix_speedup(baseline, candidate):.3f}",
        f"LLC misses     : {c.llc_misses} vs {b.llc_misses} "
        f"({ratio(c.llc_misses, b.llc_misses)})",
        f"L2 misses      : {c.l2_misses} vs {b.l2_misses} "
        f"({ratio(c.l2_misses, b.l2_misses)})",
        f"incl. victims  : {c.inclusion_victims_llc} vs "
        f"{b.inclusion_victims_llc}",
        f"relocations    : {c.relocations} vs {b.relocations}",
        f"DRAM traffic   : {c.dram_reads + c.dram_writes} vs "
        f"{b.dram_reads + b.dram_writes}",
    ]
    return "\n".join(lines)
