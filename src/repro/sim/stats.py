"""Simulation counters.

Names follow the quantities the paper plots: LLC misses (Fig. 3/10/13),
L2 misses (Fig. 4/10/13), inclusion victims (Fig. 2) split by trigger
(LLC replacement vs. sparse-directory eviction), relocation counts and
inter-relocation intervals (Fig. 9/18), and per-core cycles/instructions
for the speedup figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CoreStats:
    """Per-core counters."""

    instructions: int = 0
    cycles: int = 0
    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass(slots=True)
class SimStats:
    """System-wide counters plus per-core breakdown."""

    cores: list[CoreStats] = field(default_factory=list)

    llc_hits: int = 0
    llc_misses: int = 0
    llc_fills: int = 0
    llc_writebacks_in: int = 0  # dirty evictions received from private caches
    llc_writebacks_out: int = 0  # dirty LLC evictions sent to memory
    relocated_hits: int = 0  # LLC hits served through a Relocated pointer

    # inclusion victims = private-cache blocks force-invalidated
    back_invalidations_llc: int = 0  # back-inval messages from LLC evictions
    inclusion_victims_llc: int = 0  # private blocks killed by those messages
    back_invalidations_dir: int = 0  # from sparse-directory evictions
    inclusion_victims_dir: int = 0
    coherence_invalidations: int = 0  # normal MESI write-invalidations

    eviction_notices: int = 0  # dataless private-eviction notices
    directory_evictions: int = 0
    directory_spills: int = 0  # ZeroDEV mode: entries spilled, not evicted

    # ZIV machinery
    relocations: int = 0
    relocations_cross_bank: int = 0
    relocations_rechained: int = 0  # re-relocation of a Relocated block
    relocation_same_set: int = 0  # original set satisfied the property
    relocation_fifo_peak: int = 0
    property_hits: dict = field(default_factory=dict)  # property -> count

    # comparators
    qbs_retries: int = 0
    qbs_failures: int = 0  # QBS exhausted candidates -> inclusion victim
    sharp_alarms: int = 0  # SHARP fell through to random (step 3)

    # prefetching (off by default; the paper's machine has no prefetcher)
    prefetches_issued: int = 0
    prefetch_fills: int = 0
    prefetch_useful: int = 0  # prefetched blocks that saw a demand touch

    dram_reads: int = 0
    dram_writes: int = 0

    def __post_init__(self) -> None:
        if not self.cores:
            self.cores = []

    @classmethod
    def for_cores(cls, n: int) -> "SimStats":
        return cls(cores=[CoreStats() for _ in range(n)])

    # -- aggregates ------------------------------------------------------------

    @property
    def inclusion_victims(self) -> int:
        return self.inclusion_victims_llc + self.inclusion_victims_dir

    @property
    def l2_misses(self) -> int:
        return sum(c.l2_misses for c in self.cores)

    @property
    def l2_hits(self) -> int:
        return sum(c.l2_hits for c in self.cores)

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def total_accesses(self) -> int:
        return sum(c.accesses for c in self.cores)

    def count_property_hit(self, prop: str) -> None:
        self.property_hits[prop] = self.property_hits.get(prop, 0) + 1

    def summary(self) -> dict:
        """Flat dict of the headline counters (for printing/CSV)."""
        return {
            "instructions": self.total_instructions,
            "accesses": self.total_accesses,
            "l2_misses": self.l2_misses,
            "llc_hits": self.llc_hits,
            "llc_misses": self.llc_misses,
            "inclusion_victims_llc": self.inclusion_victims_llc,
            "inclusion_victims_dir": self.inclusion_victims_dir,
            "relocations": self.relocations,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
        }
