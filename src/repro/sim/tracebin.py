"""The chunked **binary** trace format: out-of-core workloads.

The gzip text format (:mod:`repro.sim.tracefile`) must be materialised
whole, so memory bounds trace length.  This module defines ``tracebin``,
a compact on-disk format built for the paper's multi-billion-access
TPC-E/SPEC segments:

* **Fixed-width little-endian records** (24 bytes: gap ``u32``, block
  address ``u64``, PC ``u64``, flags ``u8`` with bit 0 = write), grouped
  *per core* so no record needs a core id.
* **Chunked layout with a seekable index** -- each core's stream is
  split into chunks of ``chunk_records`` records; a per-chunk index
  entry (file offset, record count, CRC-32 of the raw bytes) lets
  readers seek to any chunk and detect bit-level corruption locally.
* **Memory-mapped access** -- :class:`TraceBinReader` maps the file and
  decodes one chunk at a time; :class:`BinWorkload` wraps it in the
  :class:`~repro.sim.trace.Workload` interface with a small decoded-chunk
  cache, so peak resident memory is bounded by the chunk size, not the
  trace length.
* **Streaming content fingerprint** -- the header stores the workload's
  SHA-256 fingerprint computed with *exactly* the same preimage as
  :meth:`Workload.fingerprint`, so a streamed binary trace and the same
  workload held in memory hash identically and share recipe-cache
  entries (:mod:`repro.sim.parallel`).

Importers convert the existing gzip text format
(:func:`convert_text_trace`) and a SimpleScalar/Dinero-style external
format (:func:`convert_din_trace`) without materialising the source:
records spool through per-core temporary files, so conversion is
out-of-core too.  :class:`TraceRef` is the picklable path+fingerprint
reference a :class:`~repro.sim.parallel.RunRecipe` carries instead of
the records themselves.

File layout (all little-endian)::

    header   (128 B)   magic 'ZIVT', version, cores, chunk_records,
                       total_records, index/meta offsets, fingerprint
    body               chunks of packed records, core 0 first
    meta     (JSON)    workload name, per-core names/counts/fingerprints
    index    (16 B/ch) offset u64, record count u32, crc32 u32

The header is patched last, so a crashed writer leaves a file whose
magic never validates -- readers fail loudly, not with silent
truncation.  See ``docs/TRACES.md`` for the full walk-through.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import tempfile
import zlib
from hashlib import sha256
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.sim.trace import CoreTrace, TraceRecord, Workload
from repro.sim.tracefile import (
    TraceFormatError,
    default_workload_name,
    scan_workload,
)

MAGIC = b"ZIVT"
FORMAT_VERSION = 1

#: Default records per chunk (24 B/record -> 1.5 MiB chunks).
DEFAULT_CHUNK_RECORDS = 65536

_HEADER = struct.Struct("<4sHHIIIQQQQ64s12x")  # 128 bytes
assert _HEADER.size == 128
_RECORD = struct.Struct("<IQQB3x")  # gap, addr, pc, flags -> 24 bytes
RECORD_BYTES = _RECORD.size
_INDEX_ENTRY = struct.Struct("<QII")  # offset, count, crc32

_U32_MAX = (1 << 32) - 1
_U64_MAX = (1 << 64) - 1


# ---------------------------------------------------------------------------
# Fingerprinting (mirrors trace.CoreTrace/Workload exactly)
# ---------------------------------------------------------------------------


class _CoreHasher:
    """Streaming replica of :meth:`CoreTrace.fingerprint`."""

    __slots__ = ("_h",)

    def __init__(self, name: str) -> None:
        self._h = sha256()
        self._h.update(name.encode())

    def update(self, gap: int, addr: int, is_write: int, pc: int) -> None:
        self._h.update(b"%d,%d,%d,%d;" % (gap, addr, is_write, pc))

    def hexdigest(self) -> str:
        return self._h.hexdigest()


def _workload_fingerprint(name: str, core_digests: Iterable[str]) -> str:
    """Streaming replica of :meth:`Workload.fingerprint`."""
    h = sha256()
    h.update(name.encode())
    for digest in core_digests:
        h.update(digest.encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class TraceBinWriter:
    """Streaming writer: cores in order, records per core in order.

    Call :meth:`write_core` once per core (dense core ids are implied by
    call order) with any iterable of records -- a list, a
    :class:`CoreTrace`, or a lazy generator draining a multi-gigabyte
    source.  Nothing beyond one chunk buffer is held in memory.  The
    file appears at ``path`` atomically on :meth:`close` (temp file +
    rename); an abandoned writer leaves no partial file behind.
    """

    def __init__(
        self,
        path,
        name: str = "mix",
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> None:
        if chunk_records <= 0:
            raise TraceFormatError(
                f"chunk_records must be positive, got {chunk_records}"
            )
        self.path = Path(path)
        self.name = name
        self.chunk_records = chunk_records
        self.core_names: list[str] = []
        self.core_counts: list[int] = []
        self.core_digests: list[str] = []
        self._index: list[tuple[int, int, int]] = []  # offset, count, crc
        self._buf = bytearray()
        self._buf_count = 0
        self._closed = False
        directory = self.path.resolve().parent
        fd, self._tmp = tempfile.mkstemp(
            dir=directory, suffix=".tracebin.tmp"
        )
        self._f = os.fdopen(fd, "wb")
        self._f.write(b"\0" * _HEADER.size)
        self._offset = _HEADER.size

    # -- streaming ---------------------------------------------------------

    def write_core(self, records: Iterable, name: Optional[str] = None) -> int:
        """Append one core's record stream; returns its record count."""
        if self._closed:
            raise TraceFormatError("writer is closed")
        core = len(self.core_names)
        if name is None:
            name = f"core{core}"
        hasher = _CoreHasher(name)
        pack = _RECORD.pack
        buf = self._buf
        count = 0
        for r in records:
            gap, addr, is_write, pc = r.gap, r.addr, r.is_write, r.pc
            w = 1 if is_write else 0
            try:
                buf += pack(gap, addr, pc, w)
            except struct.error as exc:
                raise TraceFormatError(
                    f"record {count} of core {core}: field out of range "
                    f"(gap<{_U32_MAX + 1}, addr/pc<2**64 required): {exc}"
                ) from exc
            hasher.update(gap, addr, w, pc)
            count += 1
            self._buf_count += 1
            if self._buf_count == self.chunk_records:
                self._flush_chunk()
        if self._buf_count:
            self._flush_chunk()  # chunks never span cores
        self.core_names.append(name)
        self.core_counts.append(count)
        self.core_digests.append(hasher.hexdigest())
        return count

    def _flush_chunk(self) -> None:
        data = bytes(self._buf)
        self._index.append(
            (self._offset, self._buf_count, zlib.crc32(data))
        )
        self._f.write(data)
        self._offset += len(data)
        self._buf.clear()
        self._buf_count = 0

    # -- finalisation ------------------------------------------------------

    def close(self) -> str:
        """Write meta + index, patch the header, publish the file.

        Returns the workload fingerprint (also stored in the header)."""
        if self._closed:
            raise TraceFormatError("writer is closed")
        if not self.core_names:
            self.abort()
            raise TraceFormatError("a trace needs at least one core")
        self._closed = True
        fingerprint = _workload_fingerprint(self.name, self.core_digests)
        meta = json.dumps({
            "name": self.name,
            "core_names": self.core_names,
            "core_counts": self.core_counts,
            "core_fingerprints": self.core_digests,
        }, sort_keys=True).encode()
        meta_offset = self._offset
        self._f.write(meta)
        index_offset = meta_offset + len(meta)
        pack = _INDEX_ENTRY.pack
        for offset, count, crc in self._index:
            self._f.write(pack(offset, count, crc))
        self._f.seek(0)
        self._f.write(_HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            _HEADER.size,
            0,
            len(self.core_names),
            self.chunk_records,
            sum(self.core_counts),
            index_offset,
            meta_offset,
            len(meta),
            fingerprint.encode(),
        ))
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        os.replace(self._tmp, self.path)
        return fingerprint

    def abort(self) -> None:
        """Discard the partial file (idempotent)."""
        self._closed = True
        try:
            self._f.close()
        except OSError:
            pass
        try:
            os.unlink(self._tmp)
        except OSError:
            pass

    def __enter__(self) -> "TraceBinWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._closed:
                self.close()
        else:
            self.abort()


def save_workload_bin(
    workload: Workload,
    path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> str:
    """Write an in-memory workload to ``path``; returns the fingerprint."""
    with TraceBinWriter(
        path, name=workload.name, chunk_records=chunk_records
    ) as w:
        for trace in workload:
            w.write_core(trace, name=trace.name)
        return w.close()


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


class TraceBinReader:
    """Memory-mapped random access to a tracebin file.

    Decodes one chunk at a time; the OS pages the mapping, so resident
    memory tracks the chunks actually touched, not the file size."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        try:
            self._f = open(self.path, "rb")
        except OSError as exc:
            raise TraceFormatError(f"{path}: cannot open ({exc})") from exc
        try:
            self._mm = mmap.mmap(
                self._f.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError) as exc:
            self._f.close()
            raise TraceFormatError(
                f"{path}: cannot map ({exc}); empty or unreadable file"
            ) from exc
        try:
            self._parse()
        except TraceFormatError:
            self.close()
            raise

    def _parse(self) -> None:
        mm = self._mm
        if len(mm) < _HEADER.size:
            raise TraceFormatError(
                f"{self.path}: too short for a tracebin header "
                f"({len(mm)} bytes)"
            )
        (
            magic, version, header_size, _flags, cores, chunk_records,
            total_records, index_offset, meta_offset, meta_size, fp_raw,
        ) = _HEADER.unpack_from(mm, 0)
        if magic != MAGIC:
            raise TraceFormatError(
                f"{self.path}: bad magic {magic!r} (not a tracebin file, "
                f"or an interrupted write)"
            )
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"{self.path}: format version {version} unsupported "
                f"(reader speaks {FORMAT_VERSION})"
            )
        self.cores = cores
        self.chunk_records = chunk_records
        self.total_records = total_records
        self.fingerprint = fp_raw.decode()
        if meta_offset + meta_size > len(mm):
            raise TraceFormatError(f"{self.path}: meta block out of bounds")
        try:
            meta = json.loads(mm[meta_offset:meta_offset + meta_size])
        except ValueError as exc:
            raise TraceFormatError(
                f"{self.path}: corrupt meta block ({exc})"
            ) from exc
        self.name = meta["name"]
        self.core_names = list(meta["core_names"])
        self.core_counts = [int(n) for n in meta["core_counts"]]
        self.core_fingerprints = list(meta["core_fingerprints"])
        if not (len(self.core_names) == len(self.core_counts)
                == len(self.core_fingerprints) == cores):
            raise TraceFormatError(
                f"{self.path}: meta core tables disagree with header "
                f"({cores} cores)"
            )
        if sum(self.core_counts) != total_records:
            raise TraceFormatError(
                f"{self.path}: per-core counts sum to "
                f"{sum(self.core_counts)}, header says {total_records}"
            )
        # Index: chunks in file order, core 0 first.  Split per core.
        n_chunks = sum(
            (n + chunk_records - 1) // chunk_records for n in self.core_counts
        )
        need = index_offset + n_chunks * _INDEX_ENTRY.size
        if need > len(mm):
            raise TraceFormatError(
                f"{self.path}: index out of bounds (truncated file?)"
            )
        entries = list(_INDEX_ENTRY.iter_unpack(
            mm[index_offset:index_offset + n_chunks * _INDEX_ENTRY.size]
        ))
        self._chunks: list[list[tuple[int, int, int]]] = []
        at = 0
        for core, n in enumerate(self.core_counts):
            k = (n + chunk_records - 1) // chunk_records
            core_chunks = entries[at:at + k]
            at += k
            if sum(c[1] for c in core_chunks) != n:
                raise TraceFormatError(
                    f"{self.path}: core {core} chunk counts disagree with "
                    f"its record count {n}"
                )
            self._chunks.append(core_chunks)

    # -- chunk access ------------------------------------------------------

    def chunk_count(self, core: int) -> int:
        return len(self._chunks[core])

    def chunk_bytes(self, core: int, ci: int) -> bytes:
        offset, count, _crc = self._chunks[core][ci]
        return self._mm[offset:offset + count * RECORD_BYTES]

    def chunk(self, core: int, ci: int) -> list[TraceRecord]:
        """Decode one chunk into :class:`TraceRecord` objects."""
        return [
            TraceRecord(gap, addr, bool(flags & 1), pc)
            for gap, addr, pc, flags in _RECORD.iter_unpack(
                self.chunk_bytes(core, ci)
            )
        ]

    def records(self, core: int) -> Iterator[TraceRecord]:
        """All records of one core, chunk by chunk."""
        for ci in range(len(self._chunks[core])):
            yield from self.chunk(core, ci)

    # -- verification ------------------------------------------------------

    def verify(self) -> dict:
        """Recompute every chunk CRC and the content fingerprint.

        Raises :class:`TraceFormatError` naming the first corrupt chunk
        (bit flips are localised by the per-chunk CRC-32) or the
        fingerprint mismatch; returns a summary dict when clean."""
        chunks_checked = 0
        digests = []
        for core in range(self.cores):
            hasher = _CoreHasher(self.core_names[core])
            for ci, (offset, count, crc) in enumerate(self._chunks[core]):
                data = self._mm[offset:offset + count * RECORD_BYTES]
                if zlib.crc32(data) != crc:
                    raise TraceFormatError(
                        f"{self.path}: CRC mismatch in chunk {ci} of core "
                        f"{core} (offset {offset}): the file is corrupt"
                    )
                for gap, addr, pc, flags in _RECORD.iter_unpack(data):
                    hasher.update(gap, addr, flags & 1, pc)
                chunks_checked += 1
            digest = hasher.hexdigest()
            if digest != self.core_fingerprints[core]:
                raise TraceFormatError(
                    f"{self.path}: core {core} content fingerprint "
                    f"mismatch (records altered without CRC damage?)"
                )
            digests.append(digest)
        recomputed = _workload_fingerprint(self.name, digests)
        if recomputed != self.fingerprint:
            raise TraceFormatError(
                f"{self.path}: workload fingerprint mismatch "
                f"(header {self.fingerprint[:12]}..., content "
                f"{recomputed[:12]}...)"
            )
        return {
            "chunks": chunks_checked,
            "records": self.total_records,
            "fingerprint": self.fingerprint,
        }

    def info(self) -> dict:
        """Header/meta summary (no record decoding)."""
        return {
            "path": str(self.path),
            "name": self.name,
            "cores": self.cores,
            "core_names": list(self.core_names),
            "records": self.total_records,
            "chunk_records": self.chunk_records,
            "chunks": sum(len(c) for c in self._chunks),
            "bytes": len(self._mm),
            "bytes_per_record": (
                len(self._mm) / self.total_records
                if self.total_records else 0.0
            ),
            "fingerprint": self.fingerprint,
        }

    def close(self) -> None:
        try:
            self._mm.close()
        finally:
            self._f.close()

    def __enter__(self) -> "TraceBinReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Workload views (duck-typed CoreTrace/Workload over the reader)
# ---------------------------------------------------------------------------


class BinCoreTrace:
    """Lazy :class:`CoreTrace` stand-in over one core of a reader.

    Supports the sequence protocol the engines use (``len``, indexing,
    iteration) by decoding chunks on demand; a two-slot cache keeps the
    most recently touched chunks decoded, which makes the engines'
    mostly-sequential access patterns cheap while bounding memory."""

    _CACHE_SLOTS = 2

    def __init__(self, reader: TraceBinReader, core: int) -> None:
        self._reader = reader
        self._core = core
        self.name = reader.core_names[core]
        self._len = reader.core_counts[core]
        self._chunk_records = reader.chunk_records
        self._cache: dict[int, list[TraceRecord]] = {}

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[TraceRecord]:
        return self._reader.records(self._core)

    def __getitem__(self, i: int) -> TraceRecord:
        if i < 0:
            i += self._len
        if not 0 <= i < self._len:
            raise IndexError(i)
        ci, off = divmod(i, self._chunk_records)
        chunk = self._cache.get(ci)
        if chunk is None:
            chunk = self._reader.chunk(self._core, ci)
            if len(self._cache) >= self._CACHE_SLOTS:
                # Evict the oldest-inserted chunk (dict preserves
                # insertion order); sequential readers never re-touch it.
                del self._cache[next(iter(self._cache))]
            self._cache[ci] = chunk
        return chunk[off]

    # -- CoreTrace API -----------------------------------------------------

    @property
    def records(self) -> "BinCoreTrace":
        """The engines hoist ``trace.records``; serve the lazy view."""
        return self

    @property
    def instructions(self) -> int:
        return sum(r.gap + 1 for r in self)

    def footprint(self) -> int:
        return len({r.addr for r in self})

    def fingerprint(self) -> str:
        return self._reader.core_fingerprints[self._core]


class BinWorkload(Workload):
    """A :class:`Workload` streamed from a tracebin file.

    Drop-in for the engines and the recipe layer: same iteration,
    ``cores``, ``total_accesses`` and -- crucially -- the same
    :meth:`fingerprint` as the materialised workload, served from the
    header in O(1).  ``supports_fused`` is False so
    :class:`~repro.sim.engine.Simulation` keeps the per-access driver
    (the fast engine's fused driver would materialise whole-trace decode
    columns, defeating bounded memory).  Pickling re-opens the file by
    path in the receiving process, so recipes and pool workers can carry
    one without shipping records."""

    #: Signals Simulation.run to keep the per-access (bounded-memory)
    #: driver instead of the whole-trace fused driver.
    supports_fused = False

    def __init__(self, reader: TraceBinReader) -> None:
        self.reader = reader
        traces = [BinCoreTrace(reader, c) for c in range(reader.cores)]
        super().__init__(traces, name=reader.name)
        self._fingerprint = reader.fingerprint
        self.chunk_records = reader.chunk_records
        self.path = reader.path

    def total_accesses(self) -> int:
        return self.reader.total_records

    def fingerprint(self) -> str:
        return self._fingerprint

    def close(self) -> None:
        self.reader.close()

    def __enter__(self) -> "BinWorkload":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __reduce__(self):
        return (open_trace, (str(self.path),))


def open_trace(path) -> BinWorkload:
    """Open a tracebin file as a streaming, memory-bounded workload."""
    return BinWorkload(TraceBinReader(path))


def load_workload_bin(path) -> Workload:
    """Fully materialise a tracebin file as a plain :class:`Workload`
    (convenience for small traces and tests)."""
    with TraceBinReader(path) as reader:
        traces = [
            CoreTrace(list(reader.records(c)), reader.core_names[c])
            for c in range(reader.cores)
        ]
        return Workload(traces, name=reader.name)


# ---------------------------------------------------------------------------
# TraceRef: the recipe-layer reference
# ---------------------------------------------------------------------------


class TraceRef:
    """Path + fingerprint reference to an on-disk tracebin workload.

    What a :class:`~repro.sim.parallel.RunRecipe` carries instead of the
    records: the fingerprint joins the recipe cache key exactly like an
    in-memory workload's (same preimage -- see
    :func:`_workload_fingerprint`), and :meth:`resolve` re-opens and
    *verifies* the file in the executing process, so a cached result can
    never alias a trace whose bytes changed under the same path."""

    __slots__ = ("path", "name", "_fingerprint")

    def __init__(self, path, fingerprint: str, name: str = "") -> None:
        self.path = str(path)
        self.name = name or default_workload_name(path)
        self._fingerprint = fingerprint

    def fingerprint(self) -> str:
        """Duck-types :meth:`Workload.fingerprint` for the cache key."""
        return self._fingerprint

    def resolve(self) -> BinWorkload:
        """Open the file; fails loudly when its content fingerprint no
        longer matches this reference."""
        wl = open_trace(self.path)
        if wl.fingerprint() != self._fingerprint:
            wl.close()
            raise TraceFormatError(
                f"{self.path}: trace fingerprint "
                f"{wl.fingerprint()[:12]}... does not match the "
                f"reference {self._fingerprint[:12]}...; the file changed "
                f"since the reference was taken"
            )
        return wl

    def __repr__(self) -> str:
        return (
            f"TraceRef({self.path!r}, {self._fingerprint[:12]}..., "
            f"name={self.name!r})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceRef)
            and self.path == other.path
            and self.name == other.name
            and self._fingerprint == other._fingerprint
        )

    def __hash__(self) -> int:
        return hash((self.path, self.name, self._fingerprint))

    def __reduce__(self):
        return (TraceRef, (self.path, self._fingerprint, self.name))


def make_trace_ref(path) -> TraceRef:
    """Build a :class:`TraceRef` from a tracebin file's header."""
    with TraceBinReader(path) as reader:
        return TraceRef(path, reader.fingerprint, name=reader.name)


def resolve_workload(workload):
    """Normalise a workload argument: a :class:`TraceRef` opens (and
    verifies) its file; anything Workload-shaped passes through."""
    if isinstance(workload, TraceRef):
        return workload.resolve()
    return workload


# ---------------------------------------------------------------------------
# Importers
# ---------------------------------------------------------------------------


class _CoreSpool:
    """Per-core temporary spool of packed records (out-of-core grouping).

    Text traces interleave cores arbitrarily; the binary layout groups
    them.  Records spool to per-core temp files as they are parsed, then
    replay into the writer one core at a time -- memory stays bounded by
    one buffered chunk regardless of source size."""

    def __init__(self) -> None:
        self._files: dict[int, io.BufferedRandom] = {}
        self.counts: dict[int, int] = {}

    def append(self, core: int, record: TraceRecord) -> None:
        f = self._files.get(core)
        if f is None:
            f = self._files[core] = tempfile.TemporaryFile()
            self.counts[core] = 0
        f.write(_RECORD.pack(
            record.gap, record.addr, record.pc,
            1 if record.is_write else 0,
        ))
        self.counts[core] += 1

    def declare(self, core: int) -> None:
        if core not in self._files:
            self._files[core] = tempfile.TemporaryFile()
            self.counts[core] = 0

    def replay(self, core: int) -> Iterator[TraceRecord]:
        f = self._files[core]
        f.seek(0)
        while True:
            block = f.read(RECORD_BYTES * 4096)
            if not block:
                return
            for gap, addr, pc, flags in _RECORD.iter_unpack(block):
                yield TraceRecord(gap, addr, bool(flags & 1), pc)

    def close(self) -> None:
        for f in self._files.values():
            f.close()


def convert_text_trace(
    src,
    dst,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> dict:
    """Convert a gzip text trace (:mod:`repro.sim.tracefile`) to tracebin.

    Streams the source once (records spool through per-core temp files),
    enforces the same syntax and dense-core-id rules as
    :func:`~repro.sim.tracefile.load_workload`, and preserves empty
    declared cores.  Returns the written file's :meth:`info` summary."""
    src = Path(src)
    name = default_workload_name(src)
    core_names: dict[int, str] = {}
    spool = _CoreSpool()
    try:
        for event in scan_workload(src):
            kind = event[0]
            if kind == "workload":
                name = event[1]
            elif kind == "core":
                core_names[event[1]] = event[2]
                spool.declare(event[1])
            else:
                spool.append(event[1], event[2])
        if not spool.counts:
            raise TraceFormatError(f"{src}: no records")
        cores = sorted(spool.counts)
        if cores != list(range(len(cores))):
            raise TraceFormatError(
                f"{src}: core ids must be dense from 0, got {cores}"
            )
        with TraceBinWriter(dst, name=name, chunk_records=chunk_records) as w:
            for core in cores:
                w.write_core(
                    spool.replay(core),
                    name=core_names.get(core, f"core{core}"),
                )
            w.close()
    finally:
        spool.close()
    with TraceBinReader(dst) as reader:
        return reader.info()


def convert_din_trace(
    src,
    dst,
    name: Optional[str] = None,
    block_bits: int = 6,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> dict:
    """Convert a SimpleScalar/Dinero-style address trace to tracebin.

    The external format (what ``sim-cache``-era tooling emits) is one
    access per line: a label then a hex or decimal address, whitespace
    separated.  Labels ``0``/``r``/``R`` are reads, ``1``/``w``/``W``
    writes, ``2``/``i``/``I`` instruction fetches (imported as reads).
    ``#``/``//``-prefixed lines are comments.  Byte addresses shift
    right by ``block_bits`` (64-byte blocks by default) to the block
    addresses the simulator uses; the trace is single-core with zero
    gaps and PCs.  Plain or gzip sources both work.  Returns the written
    file's :meth:`info` summary."""
    src = Path(src)
    if name is None:
        name = default_workload_name(src)
        if name.endswith(".din"):
            name = name[:-4]

    def _records() -> Iterator[TraceRecord]:
        import gzip

        opener = gzip.open if src.suffix == ".gz" else open
        try:
            with opener(src, "rt") as f:
                for line_no, line in enumerate(f, start=1):
                    line = line.strip()
                    if (not line or line.startswith("#")
                            or line.startswith("//")):
                        continue
                    parts = line.split()
                    if len(parts) < 2:
                        raise TraceFormatError(
                            f"{src}:{line_no}: expected 'label address', "
                            f"got {line!r}"
                        )
                    label = parts[0].lower()
                    if label in ("0", "r"):
                        is_write = False
                    elif label in ("1", "w"):
                        is_write = True
                    elif label in ("2", "i"):
                        is_write = False
                    else:
                        raise TraceFormatError(
                            f"{src}:{line_no}: unknown access label "
                            f"{parts[0]!r} (expected 0/1/2 or r/w/i)"
                        )
                    raw = parts[1]
                    try:
                        addr = int(raw, 16) if (
                            raw.lower().startswith("0x")
                            or any(c in "abcdef" for c in raw.lower())
                        ) else int(raw)
                    except ValueError as exc:
                        raise TraceFormatError(
                            f"{src}:{line_no}: bad address {raw!r}"
                        ) from exc
                    yield TraceRecord(0, addr >> block_bits, is_write, 0)
        except (EOFError, UnicodeDecodeError, zlib.error) as exc:
            raise TraceFormatError(
                f"{src}: corrupt or truncated trace "
                f"({type(exc).__name__}: {exc})"
            ) from exc

    with TraceBinWriter(dst, name=name, chunk_records=chunk_records) as w:
        if w.write_core(_records(), name=name) == 0:
            w.abort()
            raise TraceFormatError(f"{src}: no records")
        w.close()
    with TraceBinReader(dst) as reader:
        return reader.info()
