"""Performance metrics and normalisation.

The paper reports speedups normalised to the configuration with a 256 KB
L2 cache and an inclusive LLC running LRU (I-LRU).  For multi-programmed
mixes the per-mix speedup is the geometric mean of the per-core execution-
time ratios; figures then show the average (geometric mean) and the
min/max range across mixes.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.sim.engine import SimResult


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def per_core_speedups(baseline: SimResult, candidate: SimResult) -> list[float]:
    """Per-core speedup = baseline core cycles / candidate core cycles."""
    out = []
    for b, c in zip(baseline.stats.cores, candidate.stats.cores):
        if b.cycles and c.cycles:
            out.append(b.cycles / c.cycles)
    return out


def mix_speedup(baseline: SimResult, candidate: SimResult) -> float:
    """The per-mix speedup: geometric mean over cores."""
    return geomean(per_core_speedups(baseline, candidate))


def weighted_speedup(baseline: SimResult, candidate: SimResult) -> float:
    """Sum of per-core IPC ratios (an alternative metric)."""
    total = 0.0
    for b, c in zip(baseline.stats.cores, candidate.stats.cores):
        if b.cycles and c.cycles:
            total += (b.instructions / c.cycles) / (b.instructions / b.cycles)
    return total


def normalized_speedups(
    baselines: Sequence[SimResult], candidates: Sequence[SimResult]
) -> list[float]:
    """Per-mix speedups of paired (baseline, candidate) runs."""
    if len(baselines) != len(candidates):
        raise ValueError("baseline/candidate run counts differ")
    return [mix_speedup(b, c) for b, c in zip(baselines, candidates)]


def speedup_summary(speedups: Sequence[float]) -> dict[str, float]:
    """Mean and range, as annotated on the paper's bars."""
    if not speedups:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": geomean(speedups),
        "min": min(speedups),
        "max": max(speedups),
    }


def normalized_counts(
    baselines: Sequence[SimResult],
    candidates: Sequence[SimResult],
    counter: str,
) -> float:
    """Ratio of summed counters (e.g. "llc_misses") across paired runs,
    candidate / baseline -- the normalisation used in Figs. 2-4, 10, 13."""
    base = sum(_counter(r, counter) for r in baselines)
    cand = sum(_counter(r, counter) for r in candidates)
    return cand / base if base else 0.0


def _counter(result: SimResult, counter: str) -> int:
    stats = result.stats
    if counter == "l2_misses":
        return stats.l2_misses
    if counter == "inclusion_victims":
        return stats.inclusion_victims
    return getattr(stats, counter)
