"""SystemConfig (de)serialisation.

Lets users describe machines in JSON instead of Python -- the equivalent
of Multi2Sim's configuration files.  Round-trips every field of
:class:`~repro.params.SystemConfig` and validates through the dataclass
constructors, so a malformed file fails with the same
:class:`~repro.params.ConfigError` diagnostics as Python construction.

Example::

    {
      "cores": 8,
      "l1":  {"sets": 2,  "ways": 8, "latency": 1},
      "l2":  {"sets": 16, "ways": 8, "latency": 5},
      "llc": {"banks": 8, "sets_per_bank": 16, "ways": 16},
      "directory": {"sets": 32, "ways": 8},
      "directory_mode": "mesi"
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.params import (
    AuditParams,
    CacheGeometry,
    CHARParams,
    ConfigError,
    CoreParams,
    DirectoryGeometry,
    DRAMParams,
    LLCGeometry,
    PrefetchParams,
    ProfileParams,
    SystemConfig,
    TelemetryParams,
)

_SECTIONS: dict[str, type[Any]] = {
    "l1": CacheGeometry,
    "l2": CacheGeometry,
    "llc": LLCGeometry,
    "directory": DirectoryGeometry,
    "dram": DRAMParams,
    "core": CoreParams,
    "char": CHARParams,
    "prefetch": PrefetchParams,
    "audit": AuditParams,
    "telemetry": TelemetryParams,
    "profile": ProfileParams,
}


def config_to_dict(config: SystemConfig) -> dict[str, Any]:
    """Nested plain-dict form of a configuration."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict[str, Any]) -> SystemConfig:
    """Build a :class:`SystemConfig` from a nested dict.

    Unknown keys raise :class:`ConfigError` (catching typos beats silently
    ignoring them)."""
    if not isinstance(data, dict):
        raise ConfigError("configuration must be a JSON object")
    known = {"cores", "directory_mode", "relocation_fifo_depth",
             "nextrs_latency", "engine"} | set(_SECTIONS)
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"unknown configuration keys: {sorted(unknown)}")
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        cls = _SECTIONS.get(key)
        if cls is None:
            kwargs[key] = value
            continue
        if not isinstance(value, dict):
            raise ConfigError(f"section {key!r} must be an object")
        field_names = {f.name for f in dataclasses.fields(cls)}
        bad = set(value) - field_names
        if bad:
            raise ConfigError(
                f"unknown keys in section {key!r}: {sorted(bad)}"
            )
        try:
            kwargs[key] = cls(**value)
        except TypeError as exc:
            raise ConfigError(f"section {key!r}: {exc}") from exc
    try:
        return SystemConfig(**kwargs)
    except TypeError as exc:
        raise ConfigError(str(exc)) from exc


def save_config(config: SystemConfig, path: str | Path) -> None:
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2))


def load_config(path: str | Path) -> SystemConfig:
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    return config_from_dict(data)


def trace_ref_to_dict(ref: Any) -> dict[str, Any]:
    """Plain-dict form of a :class:`~repro.sim.tracebin.TraceRef`, so
    recipe submissions can name on-disk traces in JSON (path + content
    fingerprint + workload name) instead of shipping records."""
    return {
        "path": ref.path,
        "fingerprint": ref.fingerprint(),
        "name": ref.name,
    }


def trace_ref_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.sim.tracebin.TraceRef` from its dict
    form.  ``path`` and ``fingerprint`` are required; resolution (and
    fingerprint verification) happens later, at execution time."""
    from repro.sim.tracebin import TraceRef

    if not isinstance(data, dict):
        raise ConfigError("trace reference must be a JSON object")
    unknown = set(data) - {"path", "fingerprint", "name"}
    if unknown:
        raise ConfigError(
            f"unknown trace-reference keys: {sorted(unknown)}"
        )
    missing = {"path", "fingerprint"} - set(data)
    if missing:
        raise ConfigError(
            f"trace reference needs keys: {sorted(missing)}"
        )
    return TraceRef(
        data["path"], data["fingerprint"], name=data.get("name", "")
    )
