"""SystemConfig (de)serialisation.

Lets users describe machines in JSON instead of Python -- the equivalent
of Multi2Sim's configuration files.  Round-trips every field of
:class:`~repro.params.SystemConfig` and validates through the dataclass
constructors, so a malformed file fails with the same
:class:`~repro.params.ConfigError` diagnostics as Python construction.

Example::

    {
      "cores": 8,
      "l1":  {"sets": 2,  "ways": 8, "latency": 1},
      "l2":  {"sets": 16, "ways": 8, "latency": 5},
      "llc": {"banks": 8, "sets_per_bank": 16, "ways": 16},
      "directory": {"sets": 32, "ways": 8},
      "directory_mode": "mesi"
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.params import (
    ENGINES,
    AuditParams,
    CacheGeometry,
    CHARParams,
    ConfigError,
    CoreParams,
    DirectoryGeometry,
    DRAMParams,
    LLCGeometry,
    PrefetchParams,
    ProfileParams,
    SystemConfig,
    TelemetryParams,
)


class RecipeError(ConfigError):
    """A configuration/recipe dict was rejected.

    ``field`` names the offending key as a dotted path into the
    submitted object (``"config.engine"``, ``"workload.app"``; ``""``
    when the error has no single attributable key).  The simulation
    service surfaces it in structured JSON rejections, so remote
    clients learn *which* part of a submission to fix without parsing
    prose."""

    def __init__(self, message: str, field: str = "") -> None:
        super().__init__(message)
        self.field = field


def _prefixed(err: "RecipeError", prefix: str) -> "RecipeError":
    """Re-root a :class:`RecipeError` under an enclosing key."""
    field = f"{prefix}.{err.field}" if err.field else prefix
    return RecipeError(str(err), field)

_SECTIONS: dict[str, type[Any]] = {
    "l1": CacheGeometry,
    "l2": CacheGeometry,
    "llc": LLCGeometry,
    "directory": DirectoryGeometry,
    "dram": DRAMParams,
    "core": CoreParams,
    "char": CHARParams,
    "prefetch": PrefetchParams,
    "audit": AuditParams,
    "telemetry": TelemetryParams,
    "profile": ProfileParams,
}


def config_to_dict(config: SystemConfig) -> dict[str, Any]:
    """Nested plain-dict form of a configuration."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict[str, Any]) -> SystemConfig:
    """Build a :class:`SystemConfig` from a nested dict.

    Unknown keys raise :class:`ConfigError` (catching typos beats silently
    ignoring them).  Errors attributable to one key raise the
    :class:`RecipeError` subclass with ``field`` naming it, so the
    simulation service can reject submissions with a structured pointer
    at the offending key rather than prose alone."""
    if not isinstance(data, dict):
        raise RecipeError("configuration must be a JSON object")
    known = {"cores", "directory_mode", "relocation_fifo_depth",
             "nextrs_latency", "engine"} | set(_SECTIONS)
    unknown = set(data) - known
    if unknown:
        raise RecipeError(
            f"unknown configuration keys: {sorted(unknown)}",
            field=sorted(unknown)[0],
        )
    engine = data.get("engine")
    if engine is not None and engine not in ENGINES:
        raise RecipeError(
            f"unknown engine {engine!r}; known: {list(ENGINES)}",
            field="engine",
        )
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        cls = _SECTIONS.get(key)
        if cls is None:
            kwargs[key] = value
            continue
        if not isinstance(value, dict):
            raise RecipeError(f"section {key!r} must be an object",
                              field=key)
        field_names = {f.name for f in dataclasses.fields(cls)}
        bad = set(value) - field_names
        if bad:
            raise RecipeError(
                f"unknown keys in section {key!r}: {sorted(bad)}",
                field=f"{key}.{sorted(bad)[0]}",
            )
        try:
            kwargs[key] = cls(**value)
        except TypeError as exc:
            raise RecipeError(f"section {key!r}: {exc}",
                              field=key) from exc
    try:
        return SystemConfig(**kwargs)
    except TypeError as exc:
        raise ConfigError(str(exc)) from exc


def save_config(config: SystemConfig, path: str | Path) -> None:
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2))


def load_config(path: str | Path) -> SystemConfig:
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    return config_from_dict(data)


def trace_ref_to_dict(ref: Any) -> dict[str, Any]:
    """Plain-dict form of a :class:`~repro.sim.tracebin.TraceRef`, so
    recipe submissions can name on-disk traces in JSON (path + content
    fingerprint + workload name) instead of shipping records."""
    return {
        "path": ref.path,
        "fingerprint": ref.fingerprint(),
        "name": ref.name,
    }


def trace_ref_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.sim.tracebin.TraceRef` from its dict
    form.  ``path`` and ``fingerprint`` are required; resolution (and
    fingerprint verification) happens later, at execution time."""
    from repro.sim.tracebin import TraceRef

    if not isinstance(data, dict):
        raise ConfigError("trace reference must be a JSON object")
    unknown = set(data) - {"path", "fingerprint", "name"}
    if unknown:
        raise ConfigError(
            f"unknown trace-reference keys: {sorted(unknown)}"
        )
    missing = {"path", "fingerprint"} - set(data)
    if missing:
        raise ConfigError(
            f"trace reference needs keys: {sorted(missing)}"
        )
    return TraceRef(
        data["path"], data["fingerprint"], name=data.get("name", "")
    )


# ---------------------------------------------------------------------------
# Workload + recipe dict forms (the simulation service's wire format)
# ---------------------------------------------------------------------------

#: Recognised ``workload.kind`` values and the keys each form accepts.
_WORKLOAD_KINDS: dict[str, frozenset[str]] = {
    "records": frozenset({"kind", "name", "cores"}),
    "trace": frozenset({"kind", "path", "fingerprint", "name"}),
    "profile": frozenset({"kind", "app", "cores", "accesses", "seed"}),
    "mt": frozenset({"kind", "app", "cores", "accesses", "seed"}),
}


def workload_to_dict(workload: Any) -> dict[str, Any]:
    """Plain-dict form of a workload for JSON submission.

    :class:`~repro.sim.tracebin.TraceRef` serialises as its path +
    fingerprint stand-in (``kind="trace"``; no records shipped); an
    in-memory :class:`~repro.sim.trace.Workload` serialises every
    record (``kind="records"``), so a remote server reconstructs a
    workload with the identical content fingerprint -- and therefore
    the identical result-cache key."""
    from repro.sim.tracebin import TraceRef

    if isinstance(workload, TraceRef):
        out: dict[str, Any] = {"kind": "trace"}
        out.update(trace_ref_to_dict(workload))
        return out
    return {
        "kind": "records",
        "name": workload.name,
        "cores": [
            {
                "name": trace.name,
                "records": [
                    [r.gap, r.addr, 1 if r.is_write else 0, r.pc]
                    for r in trace.records
                ],
            }
            for trace in workload.traces
        ],
    }


def _require_keys(data: dict[str, Any], kind: str) -> None:
    allowed = _WORKLOAD_KINDS[kind]
    unknown = set(data) - allowed
    if unknown:
        raise RecipeError(
            f"unknown {kind!r}-workload keys: {sorted(unknown)}",
            field=sorted(unknown)[0],
        )


def workload_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a workload (or trace reference) from its dict form.

    ``kind="records"`` rebuilds an in-memory workload record by record;
    ``kind="trace"`` yields a :class:`~repro.sim.tracebin.TraceRef`
    (resolved and fingerprint-verified at execution time);
    ``kind="profile"`` / ``kind="mt"`` synthesize the named workload
    profile deterministically on the receiving side, so submissions can
    name profiles without shipping records."""
    from repro.sim.trace import CoreTrace, TraceRecord, Workload

    if not isinstance(data, dict):
        raise RecipeError("workload must be a JSON object")
    kind = data.get("kind", "records")
    if kind not in _WORKLOAD_KINDS:
        raise RecipeError(
            f"unknown workload kind {kind!r}; known: "
            f"{sorted(_WORKLOAD_KINDS)}",
            field="kind",
        )
    _require_keys(data, kind)
    if kind == "trace":
        body = {k: v for k, v in data.items() if k != "kind"}
        return trace_ref_from_dict(body)
    if kind in ("profile", "mt"):
        app = data.get("app")
        if not isinstance(app, str) or not app:
            raise RecipeError(
                f"{kind!r} workloads need an 'app' profile name",
                field="app",
            )
        from repro.workloads import homogeneous_mix, multithreaded_workload

        build = homogeneous_mix if kind == "profile" else (
            multithreaded_workload
        )
        try:
            return build(
                app,
                cores=int(data.get("cores", 8)),
                n_accesses=int(data.get("accesses", 20000)),
                seed=int(data.get("seed", 0)),
            )
        except (ValueError, TypeError) as exc:
            raise RecipeError(str(exc), field="app") from exc
    cores = data.get("cores")
    if not isinstance(cores, list) or not cores:
        raise RecipeError(
            "a 'records' workload needs a non-empty 'cores' list",
            field="cores",
        )
    traces = []
    for i, core in enumerate(cores):
        if not isinstance(core, dict) or "records" not in core:
            raise RecipeError(
                f"core {i} must be an object with a 'records' list",
                field=f"cores.{i}",
            )
        try:
            records = [
                TraceRecord(int(g), int(a), bool(w), int(pc))
                for g, a, w, pc in core["records"]
            ]
        except (ValueError, TypeError) as exc:
            raise RecipeError(
                f"core {i}: records must be [gap, addr, is_write, pc] "
                f"quadruples ({exc})",
                field=f"cores.{i}.records",
            ) from exc
        traces.append(CoreTrace(records, name=core.get("name", "app")))
    return Workload(traces, name=data.get("name", "mix"))


_RECIPE_KEYS = frozenset({
    "workload", "scheme", "policy", "scheduling",
    "scheme_kwargs", "policy_kwargs", "config",
})


def recipe_to_dict(recipe: Any) -> dict[str, Any]:
    """JSON-ready form of a :class:`~repro.sim.parallel.RunRecipe`.

    The round trip preserves the recipe's content: for any recipe this
    produced, ``recipe_from_dict(recipe_to_dict(r)).key() == r.key()``,
    so a submission resolved remotely shares cache entries (and ledger
    provenance) with the same recipe run locally."""
    return {
        "workload": workload_to_dict(recipe.workload),
        "scheme": recipe.scheme,
        "policy": recipe.policy,
        "scheduling": recipe.scheduling,
        "scheme_kwargs": dict(recipe.scheme_kwargs),
        "policy_kwargs": dict(recipe.policy_kwargs),
        "config": config_to_dict(recipe.config),
    }


def _kwargs_tuple(
    data: dict[str, Any], key: str
) -> tuple[tuple[str, Any], ...]:
    value = data.get(key)
    if value is None:
        return ()
    if not isinstance(value, dict):
        raise RecipeError(f"{key} must be a JSON object", field=key)
    return tuple(sorted(value.items()))


def recipe_from_dict(data: dict[str, Any]) -> Any:
    """Build a :class:`~repro.sim.parallel.RunRecipe` from its dict form.

    Validates structurally (unknown/missing keys), then semantically:
    the config constructs through :func:`config_from_dict`, the scheme
    and policy names must exist, and ``policy="belady"`` forces
    lock-step scheduling exactly as
    :func:`~repro.sim.parallel.make_recipe` does.  Rejections raise
    :class:`RecipeError` with ``field`` naming the offending key."""
    from repro.sim.parallel import RunRecipe

    if not isinstance(data, dict):
        raise RecipeError("recipe must be a JSON object")
    unknown = set(data) - _RECIPE_KEYS
    if unknown:
        raise RecipeError(
            f"unknown recipe keys: {sorted(unknown)}",
            field=sorted(unknown)[0],
        )
    missing = {"workload", "scheme", "config"} - set(data)
    if missing:
        raise RecipeError(
            f"recipe needs keys: {sorted(missing)}",
            field=sorted(missing)[0],
        )
    try:
        workload = workload_from_dict(data["workload"])
    except RecipeError as exc:
        raise _prefixed(exc, "workload") from exc
    try:
        config = config_from_dict(data["config"])
    except RecipeError as exc:
        raise _prefixed(exc, "config") from exc
    except ConfigError as exc:
        raise RecipeError(str(exc), field="config") from exc
    scheme = data["scheme"]
    scheme_kwargs = _kwargs_tuple(data, "scheme_kwargs")
    if not isinstance(scheme, str):
        raise RecipeError("scheme must be a string", field="scheme")
    from repro.schemes import make_scheme

    try:
        make_scheme(scheme, **dict(scheme_kwargs))
    except (ValueError, TypeError) as exc:
        raise RecipeError(str(exc), field="scheme") from exc
    policy = data.get("policy", "lru")
    policy_kwargs = _kwargs_tuple(data, "policy_kwargs")
    if not isinstance(policy, str):
        raise RecipeError("policy must be a string", field="policy")
    if policy != "belady":
        from repro.cache.replacement import make_policy

        try:
            make_policy(policy, **dict(policy_kwargs))
        except (ValueError, TypeError) as exc:
            raise RecipeError(str(exc), field="policy") from exc
    scheduling = data.get("scheduling", "timing")
    if scheduling not in ("timing", "lockstep"):
        raise RecipeError(
            f"unknown scheduling mode {scheduling!r}; known: "
            f"['timing', 'lockstep']",
            field="scheduling",
        )
    if policy == "belady":
        scheduling = "lockstep"
    return RunRecipe(
        workload=workload,
        scheme=scheme,
        config=config,
        policy=policy,
        scheduling=scheduling,
        scheme_kwargs=scheme_kwargs,
        policy_kwargs=policy_kwargs,
    )
