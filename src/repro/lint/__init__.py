"""Repo-specific static analysis: machine-checked simulator invariants.

Three PRs in a row hand-maintained the same cross-cutting contracts:
``AuditParams``/``TelemetryParams`` had to be threaded through
``SystemConfig`` *and* ``config_io`` (or the recipe cache key silently
loses a dimension), telemetry emission sites had to stay behind the
enabled-predicate (or the disabled hot path regresses), and the
persistent result cache of :mod:`repro.sim.parallel` rests entirely on
bitwise-deterministic simulation.  This package turns each of those
regression classes into a permanent AST-level rule:

==========================  ================================================
rule id                     invariant enforced
==========================  ================================================
``determinism``             no unseeded ``random``, wall-clock reads or
                            set-order iteration in simulator code
``cache-key-completeness``  every ``SystemConfig`` field round-trips
                            through :mod:`repro.config_io`
``counter-discipline``      only declared ``SimStats``/``CoreStats``
                            fields are ever incremented
``telemetry-guard``         every event-emission call sits behind the
                            ``telemetry is not None`` predicate
``event-schema-sync``       emitted event kinds == ``EVENT_KINDS`` ==
                            the schema table in docs/OBSERVABILITY.md
``ledger-schema-sync``      ``LedgerRecord`` fields == construction
                            sites == the docs field table
``lock-discipline``         ``guarded-by[lock]``-declared state holds
                            its lock at every access and never escapes
``lock-order``              the acquires-while-holding graph is acyclic
``fork-safety``             pool-dispatched workers touch no locks,
                            files, or the run ledger
==========================  ================================================

The concurrency rules ride a shared-state dataflow layer
(:mod:`repro.lint.dataflow`) that classifies each attribute of a
lock-owning class as thread-confined, lock-guarded, or
immutable-after-publish, with a three-marker contract vocabulary
(``# repro-lint: guarded-by[lock]`` / ``holds[lock]`` / ``fork-safe``).

Run it as ``python -m repro lint`` (or ``scripts/run_lint.py``); findings
are plain ``file:line: [rule] message`` lines or JSON.  A finding is
silenced for one line with a trailing ``# repro-lint: ignore[rule]``
comment; ``--write-baseline``/``--baseline`` record known findings and
fail only on new ones.  See docs/STATIC_ANALYSIS.md for the rule
catalog with the history behind each rule.
"""

from repro.lint.model import (
    Finding,
    findings_from_json,
    findings_to_json,
)
from repro.lint.registry import Rule, all_rules, get_rule, register
from repro.lint.runner import format_findings, lint_paths

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "findings_from_json",
    "findings_to_json",
    "format_findings",
    "get_rule",
    "lint_paths",
    "register",
]
