"""The lint finding model and its JSON round-trip."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line.

    ``file`` is the path as scanned (repo-relative when the runner was
    given relative paths), ``line`` is 1-based.  Orderable so reports are
    stable regardless of rule execution order."""

    file: str
    line: int
    rule_id: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule_id": self.rule_id,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(
            file=str(data["file"]),
            line=int(data["line"]),
            rule_id=str(data["rule_id"]),
            message=str(data["message"]),
        )

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule_id}] {self.message}"


def findings_to_json(findings: list[Finding]) -> str:
    """Serialise findings to a stable JSON document."""
    return json.dumps(
        {
            "count": len(findings),
            "findings": [f.to_dict() for f in sorted(findings)],
        },
        indent=2,
        sort_keys=True,
    )


def findings_from_json(text: str) -> list[Finding]:
    """Parse a document produced by :func:`findings_to_json`."""
    data = json.loads(text)
    return [Finding.from_dict(d) for d in data["findings"]]
