"""Lint driver: build a project, run rules, apply suppressions.

``lint_paths`` is the library entry point (the CLI and the tests both go
through it); it returns the surviving findings sorted by file/line.
Syntax errors in scanned files become findings themselves (rule id
``parse-error``) rather than crashing the run, so one broken file cannot
hide findings in the other two hundred.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.lint.model import Finding, findings_to_json
from repro.lint.project import Project
from repro.lint.registry import select_rules
from repro.lint.suppress import is_suppressed

PARSE_ERROR_RULE = "parse-error"


def lint_project(
    project: Project, rule_ids: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Run rules over an already-built project."""
    findings: set[Finding] = set()
    rules = select_rules(rule_ids)
    for rule in rules:
        findings.update(rule.check(project))
    for sf in project.files:
        sf.tree  # force the parse so parse_error is populated
        if sf.parse_error is not None:
            findings.add(
                Finding(
                    file=sf.rel,
                    line=sf.parse_error.lineno or 1,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"syntax error: {sf.parse_error.msg}",
                )
            )
    suppressions = {sf.rel: sf.suppressions for sf in project.files}
    kept = [
        f
        for f in findings
        if not is_suppressed(
            suppressions.get(f.file, {}), f.line, f.rule_id
        )
    ]
    return sorted(kept)


def lint_paths(
    paths: list[str],
    rule_ids: Optional[Iterable[str]] = None,
    root: Optional[str] = None,
) -> list[Finding]:
    """Lint files/directories; returns sorted, suppression-filtered
    findings.  ``root`` anchors the relative paths used in reports and
    scope matching (defaults to the current directory)."""
    return lint_project(Project(paths, root=root), rule_ids)


def format_findings(findings: list[Finding], fmt: str = "human") -> str:
    """Render findings as ``human`` report lines or a ``json`` document."""
    if fmt == "json":
        return findings_to_json(findings)
    if fmt != "human":
        raise ValueError(f"unknown format {fmt!r}")
    if not findings:
        return "repro lint: clean"
    lines = [f.format() for f in findings]
    lines.append(f"repro lint: {len(findings)} finding(s)")
    return "\n".join(lines)
