"""Baseline record/compare mode: fail CI only on *new* findings.

A rule should be able to land before the tree is fully clean -- the
alternative is rules that arrive pre-weakened, scoped around every
existing violation.  ``repro lint --write-baseline lint_baseline.json``
records the current findings (the committed baseline is empty: the
shipped tree is clean); ``repro lint --baseline lint_baseline.json``
then reports and fails only on findings *not* in the baseline, while
still reporting how many baselined findings were fixed so the file can
be re-recorded as the debt is paid down.

Matching deliberately ignores line numbers: editing an unrelated part
of a file shifts every finding below the edit, and a baseline keyed on
lines would cry wolf on every such shift.  A finding matches a baseline
entry when ``(file, rule_id, message)`` agree; duplicates are matched
with multiplicity (two identical violations in one file need two
baseline entries).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.lint.model import Finding, findings_from_json, findings_to_json
from repro.lint.project import LintError

_Key = tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.file, finding.rule_id, finding.message)


@dataclass(frozen=True)
class BaselineDelta:
    """The comparison of one lint run against a recorded baseline."""

    new: tuple[Finding, ...]  #: findings absent from the baseline
    matched: int  #: findings present in both
    fixed: int  #: baseline entries no current finding matches

    def summary(self, baseline_path: str) -> str:
        return (
            f"repro lint: baseline {baseline_path}: "
            f"{self.matched} known finding(s), {len(self.new)} new, "
            f"{self.fixed} fixed"
        )


def load_baseline(path: str) -> list[Finding]:
    """The findings recorded in a baseline file (LintError when the
    file is missing or not a findings document)."""
    p = Path(path)
    if not p.is_file():
        raise LintError(f"baseline file not found: {path}")
    try:
        return findings_from_json(p.read_text())
    except (ValueError, KeyError, TypeError) as exc:
        raise LintError(
            f"baseline file {path} is not a findings document "
            f"(regenerate it with --write-baseline): {exc}"
        ) from None


def write_baseline(path: str, findings: list[Finding]) -> None:
    """Record ``findings`` as the new baseline document."""
    Path(path).write_text(findings_to_json(findings) + "\n")


def compare(
    current: list[Finding], baseline: list[Finding]
) -> BaselineDelta:
    """Split ``current`` into baselined and new findings."""
    remaining: Counter[_Key] = Counter(_key(f) for f in baseline)
    new: list[Finding] = []
    matched = 0
    for finding in sorted(current):
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(finding)
    return BaselineDelta(
        new=tuple(new),
        matched=matched,
        fixed=sum(remaining.values()),
    )
