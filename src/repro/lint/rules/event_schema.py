"""Rule: emitted event kinds, ``EVENT_KINDS`` and the docs agree.

The telemetry event stream is a public schema: docs/OBSERVABILITY.md
documents one table row per kind (name, category, severity, payload),
``repro.sim.telemetry.EVENT_KINDS`` declares the kind -> (category,
severity) mapping that filtering uses, and the engine/scheme/CHAR code
emits kinds by string.  Three artefacts, three ways to drift.  This rule
pins them together:

* every ``emit("<kind>", ...)`` site names a declared kind (an unknown
  kind is a ``KeyError`` at the first traced run, but only on the path
  that emits it);
* every declared kind is documented in the kind table, with the *same*
  category and severity the code declares;
* every documented kind is still declared (no ghost rows);
* every declared kind is emitted somewhere (dead schema entries);
* declared categories/severities are drawn from the
  ``TELEMETRY_CATEGORIES`` / ``TELEMETRY_SEVERITIES`` vocabularies in
  ``params.py`` when those are present.

Emit sites whose kind is a variable are resolved by collecting the
string literals assigned to that variable in the enclosing function
(the relocation path selects among three kinds via one conditional
expression); a kind the rule cannot resolve is itself a finding.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from repro.lint.model import Finding
from repro.lint.project import DocFile, Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import SIMULATOR_SCOPE
from repro.lint.rules.telemetry_guard import is_telemetry_expr
from repro.lint.visitor import LintVisitor, string_constants

_DOC_NAME = "OBSERVABILITY.md"

#: Header row of the kind table in the observability doc.
_TABLE_HEADER = re.compile(
    r"^\|\s*Kind\s*\|\s*Category\s*\|\s*Severity\s*\|", re.IGNORECASE
)
_TABLE_ROW = re.compile(r"^\|\s*`(?P<kind>[A-Za-z0-9_]+)`\s*\|")


def _tuple_constant(node: ast.expr) -> Optional[tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return tuple(out)
    return None


def _module_tuple(tree: ast.Module, name: str) -> Optional[tuple[str, ...]]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
        ):
            return _tuple_constant(node.value)
    return None


def declared_event_kinds(
    tree: ast.Module,
) -> Optional[dict[str, tuple[Optional[tuple[str, ...]], int]]]:
    """``{kind: ((category, severity) | None, lineno)}`` from the
    ``EVENT_KINDS`` dict; None when the file does not declare it."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "EVENT_KINDS"
            and isinstance(node.value, ast.Dict)
        ):
            out: dict[str, tuple[Optional[tuple[str, ...]], int]] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    out[key.value] = (_tuple_constant(value), key.lineno)
            return out
    return None


def documented_kinds(doc: DocFile) -> dict[str, tuple[str, str, int]]:
    """``{kind: (category, severity, lineno)}`` from the kind table."""
    out: dict[str, tuple[str, str, int]] = {}
    in_table = False
    for lineno, line in enumerate(doc.text.splitlines(), 1):
        if _TABLE_HEADER.match(line):
            in_table = True
            continue
        if not in_table:
            continue
        if not line.lstrip().startswith("|"):
            in_table = False
            continue
        m = _TABLE_ROW.match(line)
        if m is None:
            continue  # the |---| separator row
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 3:
            continue
        category = cells[1].split()[0] if cells[1] else ""
        severity = cells[2].split()[0] if cells[2] else ""
        out[m.group("kind")] = (category, severity, lineno)
    return out


class _EmitSiteVisitor(LintVisitor):
    """Collects ``(kind | None, node)`` for every telemetry emit call."""

    rule_id = "event-schema-sync"

    def __init__(self, source_file: SourceFile) -> None:
        super().__init__(source_file)
        self.sites: list[tuple[Optional[set[str]], ast.Call]] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "emit"
            and is_telemetry_expr(func.value)
            and node.args
        ):
            self.sites.append((self._resolve_kind(node.args[0]), node))
        self.generic_visit(node)

    def _resolve_kind(self, arg: ast.expr) -> Optional[set[str]]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return {arg.value}
        if isinstance(arg, ast.Name):
            fn = self.current_function
            if fn is None:
                return None
            kinds: set[str] = set()
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == arg.id
                    for t in stmt.targets
                ):
                    kinds |= string_constants(stmt.value)
            return kinds or None
        if isinstance(arg, ast.IfExp):
            return string_constants(arg) or None
        return None


@register
class EventSchemaSyncRule(Rule):
    rule_id = "event-schema-sync"
    description = (
        "event kinds emitted in code, declared in EVENT_KINDS and "
        "documented in docs/OBSERVABILITY.md must agree (names, "
        "categories, severities)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        telemetry = project.find_module("telemetry.py")
        if telemetry is None or telemetry.tree is None:
            return
        declared = declared_event_kinds(telemetry.tree)
        if declared is None:
            return

        params = project.find_module("params.py")
        categories = severities = None
        if params is not None and params.tree is not None:
            categories = _module_tuple(params.tree, "TELEMETRY_CATEGORIES")
            severities = _module_tuple(params.tree, "TELEMETRY_SEVERITIES")

        # -- declared kinds are internally consistent ----------------------
        for kind, (pair, line) in sorted(declared.items()):
            if pair is None or len(pair) != 2:
                yield Finding(
                    file=telemetry.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"EVENT_KINDS[{kind!r}] must map to a literal "
                        f"(category, severity) tuple"
                    ),
                )
                continue
            category, severity = pair
            if categories is not None and category not in categories:
                yield Finding(
                    file=telemetry.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"EVENT_KINDS[{kind!r}] category {category!r} "
                        f"is not in TELEMETRY_CATEGORIES"
                    ),
                )
            if severities is not None and severity not in severities:
                yield Finding(
                    file=telemetry.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"EVENT_KINDS[{kind!r}] severity {severity!r} "
                        f"is not in TELEMETRY_SEVERITIES"
                    ),
                )

        # -- emit sites reference declared kinds ---------------------------
        emitted: set[str] = set()
        any_sites = False
        for sf in project.scoped(SIMULATOR_SCOPE):
            visitor = _EmitSiteVisitor(sf)
            tree = sf.tree
            if tree is None:
                continue
            visitor.visit(tree)
            for kinds, call in visitor.sites:
                any_sites = True
                if kinds is None:
                    yield Finding(
                        file=sf.rel,
                        line=call.lineno,
                        rule_id=self.rule_id,
                        message=(
                            "event kind is not statically resolvable; "
                            "emit a string literal (or a variable "
                            "assigned only literals in this function)"
                        ),
                    )
                    continue
                emitted |= kinds
                for kind in sorted(kinds - set(declared)):
                    yield Finding(
                        file=sf.rel,
                        line=call.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"emitted event kind {kind!r} is not "
                            f"declared in EVENT_KINDS (KeyError on the "
                            f"first traced run)"
                        ),
                    )

        if any_sites:
            for kind in sorted(set(declared) - emitted):
                yield Finding(
                    file=telemetry.rel,
                    line=declared[kind][1],
                    rule_id=self.rule_id,
                    message=(
                        f"EVENT_KINDS declares {kind!r} but no "
                        f"simulator code emits it (dead schema entry "
                        f"or a missed emission site)"
                    ),
                )

        # -- the documentation table matches the declaration ---------------
        doc = project.find_doc(_DOC_NAME)
        if doc is None:
            return
        documented = documented_kinds(doc)
        for kind, (pair, line) in sorted(declared.items()):
            if kind not in documented:
                yield Finding(
                    file=telemetry.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"event kind {kind!r} is missing from the kind "
                        f"table in {doc.rel}"
                    ),
                )
                continue
            if pair is None:
                continue
            doc_cat, doc_sev, doc_line = documented[kind]
            if (doc_cat, doc_sev) != pair:
                yield Finding(
                    file=doc.rel,
                    line=doc_line,
                    rule_id=self.rule_id,
                    message=(
                        f"kind table documents {kind!r} as "
                        f"({doc_cat}, {doc_sev}) but EVENT_KINDS "
                        f"declares ({pair[0]}, {pair[1]})"
                    ),
                )
        for kind, (_c, _s, line) in sorted(documented.items()):
            if kind not in declared:
                yield Finding(
                    file=doc.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"kind table documents {kind!r}, which "
                        f"EVENT_KINDS does not declare (ghost row)"
                    ),
                )
