"""Rule: telemetry/profiler emission only behind the enabled-predicate.

The observability contract (docs/OBSERVABILITY.md, "Overhead") is that a
disabled run pays **one predicate check** per instrumented site and
nothing else: no event-payload formatting, no attribute chasing, no dead
keyword construction.  That only holds if every ``<x>.emit(...)`` call
site sits inside an ``if <x> is not None`` (or truthiness) guard on the
telemetry handle -- the handle is ``None`` whenever no collector is
bound, so an unguarded call is *also* a latent ``AttributeError`` on
every untraced run that reaches it.

The phase profiler (:mod:`repro.obs.profile`) follows the same
discipline: ``<profiler>.enter(...)``, ``.exit(...)`` and ``.timed(...)``
sites in simulator code must sit behind ``if <profiler> is not None`` --
the handle is ``None`` on every unprofiled run, and phase brackets must
cost one predicate per phase *transition*, never per access.

The rule finds calls of the watched methods on a handle-valued
expression (a bare name or attribute whose name contains ``telemetry``
resp. ``profil``) and requires an enclosing ``if``/``while``/ternary
whose test mentions that same kind of handle, either as ``... is not
None`` or as a plain truthiness check.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.model import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import SIMULATOR_SCOPE
from repro.lint.visitor import LintVisitor, is_none_constant

#: Watched handles: name substring -> method names whose call sites must
#: be guarded on that handle.
_HANDLES = {
    "telemetry": frozenset({"emit"}),
    "profil": frozenset({"enter", "exit", "timed"}),
}


def _is_handle_expr(node: ast.AST, marker: str) -> bool:
    """Does ``node`` (a call receiver or a guard test) denote the
    observability handle named by ``marker``?"""
    for n in ast.walk(node):
        if isinstance(n, ast.Attribute) and marker in n.attr:
            return True
        if isinstance(n, ast.Name) and marker in n.id:
            return True
    return False


def is_telemetry_expr(node: ast.AST) -> bool:
    """Does ``node`` denote the telemetry handle?  (Shared with the
    event-schema rule.)"""
    return _is_handle_expr(node, "telemetry")


def _test_guards_handle(test: ast.expr, marker: str) -> bool:
    """Does an ``if`` test establish that the handle is live?"""
    if isinstance(test, ast.Compare):
        if (
            len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and is_none_constant(test.comparators[0])
            and _is_handle_expr(test.left, marker)
        ):
            return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_test_guards_handle(v, marker) for v in test.values)
    # Plain truthiness: ``if telemetry:`` / ``if self.profiler:``.
    if isinstance(test, (ast.Name, ast.Attribute)):
        return _is_handle_expr(test, marker)
    return False


class _GuardVisitor(LintVisitor):
    rule_id = "telemetry-guard"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            for marker, methods in _HANDLES.items():
                if (
                    func.attr in methods
                    and _is_handle_expr(func.value, marker)
                ):
                    if not self._guarded(node, marker):
                        kind = (
                            "telemetry" if marker == "telemetry"
                            else "profiler"
                        )
                        self.report(
                            node,
                            f"{kind} {func.attr}() outside an 'is not "
                            f"None' guard: the disabled path must cost "
                            f"one predicate check, and the handle is "
                            f"None on un-instrumented runs",
                        )
                    break
        self.generic_visit(node)

    def _guarded(self, node: ast.Call, marker: str) -> bool:
        # Walk the ancestor path outward; a guard only counts when the
        # call lives in the *body* of the guarded branch (an emit in the
        # else-branch of its own guard is still unguarded).
        path = self.stack
        for i in range(len(path) - 2, -1, -1):
            anc = path[i]
            child = path[i + 1]
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Guards do not cross function boundaries.
                return False
            if isinstance(anc, (ast.If, ast.While)):
                if _test_guards_handle(anc.test, marker) and any(
                    child is stmt for stmt in anc.body
                ):
                    return True
            elif isinstance(anc, ast.IfExp):
                if (
                    _test_guards_handle(anc.test, marker)
                    and child is anc.body
                ):
                    return True
        return False


@register
class TelemetryGuardRule(Rule):
    rule_id = "telemetry-guard"
    description = (
        "every telemetry emit() and profiler enter()/exit()/timed() call "
        "must sit behind the enabled-predicate so the disabled hot path "
        "stays one check per site"
    )
    scope_dirs = SIMULATOR_SCOPE

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in self.files(project):
            assert isinstance(sf, SourceFile)
            yield from _GuardVisitor(sf).run()
