"""Rule: telemetry emission only behind the enabled-predicate.

The telemetry contract (docs/OBSERVABILITY.md, "Overhead") is that a
disabled run pays **one predicate check per access** and nothing else:
no event-payload formatting, no attribute chasing, no dead keyword
construction.  That only holds if every ``<x>.emit(...)`` call site sits
inside an ``if <x> is not None`` (or truthiness) guard on the telemetry
handle -- the handle is ``None`` whenever no collector is bound, so an
unguarded call is *also* a latent ``AttributeError`` on every untraced
run that reaches it.

The rule finds calls of ``emit`` on a telemetry-valued expression (a
bare name containing ``telemetry`` or any ``.telemetry`` attribute) and
requires an enclosing ``if``/``while``/ternary whose test mentions that
telemetry value, either as ``... is not None`` or as a plain truthiness
check.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.model import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import SIMULATOR_SCOPE
from repro.lint.visitor import LintVisitor, is_none_constant


def is_telemetry_expr(node: ast.AST) -> bool:
    """Does ``node`` (an emit receiver or a guard test) denote the
    telemetry handle?"""
    for n in ast.walk(node):
        if isinstance(n, ast.Attribute) and "telemetry" in n.attr:
            return True
        if isinstance(n, ast.Name) and "telemetry" in n.id:
            return True
    return False


def _test_guards_telemetry(test: ast.expr) -> bool:
    """Does an ``if`` test establish that the telemetry handle is live?"""
    if isinstance(test, ast.Compare):
        if (
            len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and is_none_constant(test.comparators[0])
            and is_telemetry_expr(test.left)
        ):
            return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_test_guards_telemetry(v) for v in test.values)
    # Plain truthiness: ``if telemetry:`` / ``if self.telemetry:``.
    if isinstance(test, (ast.Name, ast.Attribute)):
        return is_telemetry_expr(test)
    return False


class _GuardVisitor(LintVisitor):
    rule_id = "telemetry-guard"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "emit"
            and is_telemetry_expr(func.value)
        ):
            if not self._guarded(node):
                self.report(
                    node,
                    "telemetry emit() outside an 'is not None' guard: "
                    "the disabled path must cost one predicate check, "
                    "and the handle is None on untraced runs",
                )
        self.generic_visit(node)

    def _guarded(self, node: ast.Call) -> bool:
        # Walk the ancestor path outward; a guard only counts when the
        # call lives in the *body* of the guarded branch (an emit in the
        # else-branch of its own guard is still unguarded).
        path = self.stack
        for i in range(len(path) - 2, -1, -1):
            anc = path[i]
            child = path[i + 1]
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Guards do not cross function boundaries.
                return False
            if isinstance(anc, (ast.If, ast.While)):
                if _test_guards_telemetry(anc.test) and any(
                    child is stmt for stmt in anc.body
                ):
                    return True
            elif isinstance(anc, ast.IfExp):
                if _test_guards_telemetry(anc.test) and child is anc.body:
                    return True
        return False


@register
class TelemetryGuardRule(Rule):
    rule_id = "telemetry-guard"
    description = (
        "every telemetry emit() call must sit behind the enabled-"
        "predicate so the disabled hot path stays one check per access"
    )
    scope_dirs = SIMULATOR_SCOPE

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in self.files(project):
            assert isinstance(sf, SourceFile)
            yield from _GuardVisitor(sf).run()
