"""Rule: simulator code must be bitwise deterministic.

The persistent result cache (:mod:`repro.sim.parallel`) serves a cached
``SimResult`` whenever a recipe's content hash matches -- which is only
sound if re-running the simulation would reproduce the result bit for
bit.  Three constructs silently break that:

* **module-level ``random`` calls** (``random.random()``,
  ``random.Random()`` with no seed, ``random.shuffle(...)``): state is
  shared, unseeded and process-global.  Every RNG in simulator code must
  be a ``random.Random(seed)`` instance.
* **wall-clock reads** (``time.time()``, ``time.perf_counter()``,
  ``datetime.now()``): any value derived from them differs across runs.
* **iteration over set displays/constructors**: for strings (and any
  object using the default hash) iteration order depends on
  ``PYTHONHASHSEED``, so ``for x in {...}`` can reorder evictions
  between two runs of the same recipe.

Pure wall-clock *reporting* (progress heartbeats that never touch a
``SimResult``) is the intended use of the per-line suppression comment.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.model import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import DETERMINISM_SCOPE
from repro.lint.visitor import LintVisitor, dotted_name

#: ``random.<fn>`` calls that hit the module-global, unseeded RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    (
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    )
)

#: ``time.<fn>`` wall-clock reads.
CLOCK_FUNCS = frozenset(
    (
        "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
        "process_time", "process_time_ns", "time", "time_ns",
    )
)

#: ``datetime``-style "now" constructors.
DATE_FUNCS = frozenset(("now", "today", "utcnow"))


class _DeterminismVisitor(LintVisitor):
    rule_id = "determinism"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        head, _, tail = name.rpartition(".")
        if head == "random" and tail in GLOBAL_RANDOM_FUNCS:
            self.report(
                node,
                f"call to module-level random.{tail}() uses the shared "
                f"unseeded RNG and poisons result-cache determinism; "
                f"use a random.Random(seed) instance",
            )
        elif name == "random.Random" and not node.args and not node.keywords:
            self.report(
                node,
                "random.Random() without a seed draws entropy from the "
                "OS; pass an explicit seed",
            )
        elif head.split(".")[-1] == "time" and tail in CLOCK_FUNCS:
            self.report(
                node,
                f"wall-clock read {name}() makes simulation output "
                f"run-dependent; derive timing from simulated cycles",
            )
        elif tail in DATE_FUNCS and "datetime" in head.split("."):
            self.report(
                node,
                f"{name}() reads the wall clock; simulation state must "
                f"not depend on real time",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_iter(self, it: ast.expr) -> None:
        bad: Optional[str] = None
        if isinstance(it, (ast.Set, ast.SetComp)):
            bad = "a set display"
        elif (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("set", "frozenset")
        ):
            bad = f"{it.func.id}(...)"
        if bad is not None:
            self.report(
                it,
                f"iteration over {bad}: set order depends on "
                f"PYTHONHASHSEED for str keys; iterate a sorted() or "
                f"insertion-ordered sequence instead",
            )


@register
class DeterminismRule(Rule):
    rule_id = "determinism"
    description = (
        "no unseeded random, wall-clock reads or set-order iteration in "
        "simulator, service or observability code (the content-hash "
        "result cache requires bitwise determinism; legitimate "
        "timestamps carry a rationale suppression)"
    )
    scope_dirs = DETERMINISM_SCOPE

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in self.files(project):
            assert isinstance(sf, SourceFile)
            yield from _DeterminismVisitor(sf).run()
