"""Rule: only declared ``SimStats``/``CoreStats`` fields are incremented.

``SimStats`` is ``@dataclass(slots=True)``, so ``stats.llc_hitz += 1``
raises at runtime -- but only on the path that executes it, and
``__slots__`` does not protect the hot-path idiom of hoisting a nested
object into a local first (``cs = self.stats.cores[core]`` followed by
``cs.l1_hitz += 1`` fails only when that line runs).  This rule finds
every augmented assignment whose target is an attribute of a
*stats-derived* expression and checks the attribute against the fields
declared in ``stats.py`` -- including increments of read-only aggregate
properties (``stats.l2_misses += 1`` would raise ``AttributeError``).

"Stats-derived" is tracked per function by a tiny alias analysis: an
expression is tainted when it mentions an attribute or bare name
``stats``, or a local previously assigned from a tainted expression
(so the hoisted ``core_stats = h.stats.cores; cs = core_stats[core]``
chain in the engine is still covered).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Union

from repro.lint.model import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import SIMULATOR_SCOPE
from repro.lint.visitor import decorator_names

_STATS_CLASSES = ("SimStats", "CoreStats")

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def declared_counters(
    stats_file: SourceFile,
) -> Optional[tuple[frozenset[str], frozenset[str]]]:
    """``(fields, properties)`` declared by SimStats + CoreStats, or None
    when the file defines neither class."""
    tree = stats_file.tree
    if tree is None:
        return None
    fields: set[str] = set()
    props: set[str] = set()
    found = False
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.ClassDef) and node.name in _STATS_CLASSES
        ):
            continue
        found = True
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.add(stmt.target.id)
            elif isinstance(stmt, ast.FunctionDef):
                if "property" in decorator_names(stmt):
                    props.add(stmt.name)
    if not found:
        return None
    return frozenset(fields), frozenset(props)


def _scopes(tree: ast.Module) -> Iterator[ScopeNode]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _tainted_names(scope: ScopeNode) -> frozenset[str]:
    """Locals of ``scope`` aliased (transitively) to a stats expression."""
    tainted: set[str] = set()

    def expr_tainted(expr: ast.AST) -> bool:
        for n in ast.walk(expr):
            if isinstance(n, ast.Attribute) and n.attr == "stats":
                return True
            if isinstance(n, ast.Name) and (
                n.id == "stats" or n.id in tainted
            ):
                return True
        return False

    # Fixpoint over plain name assignments; chains are short, so the
    # pass count is bounded by the alias depth (capped defensively).
    for _ in range(8):
        changed = False
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id not in tainted
                    and expr_tainted(node.value)
                ):
                    tainted.add(target.id)
                    changed = True
        if not changed:
            break
    return frozenset(tainted)


class _Checker:
    def __init__(
        self,
        sf: SourceFile,
        fields: frozenset[str],
        props: frozenset[str],
    ) -> None:
        self.sf = sf
        self.fields = fields
        self.props = props
        self.findings: list[Finding] = []
        self._seen: set[tuple[int, str]] = set()

    def run(self) -> list[Finding]:
        tree = self.sf.tree
        if tree is None:
            return []
        # Functions re-walk their own bodies after the module pass; the
        # (line, attr) dedup set keeps each site reported once.
        for scope in _scopes(tree):
            tainted = _tainted_names(scope)
            for node in ast.walk(scope):
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Attribute
                ):
                    self._check(node, node.target, tainted)
        return self.findings

    def _check(
        self,
        node: ast.AugAssign,
        target: ast.Attribute,
        tainted: frozenset[str],
    ) -> None:
        base = target.value
        if not self._base_is_stats(base, tainted):
            return
        attr = target.attr
        key = (node.lineno, attr)
        if key in self._seen:
            return
        if attr in self.fields:
            return
        self._seen.add(key)
        if attr in self.props:
            msg = (
                f"increment of read-only stats aggregate {attr!r} "
                f"(a property; would raise AttributeError at runtime)"
            )
        else:
            msg = (
                f"increment of undeclared stats counter {attr!r}; "
                f"declare it as a SimStats/CoreStats field in stats.py "
                f"so telemetry and reports can see it"
            )
        self.findings.append(
            Finding(
                file=self.sf.rel,
                line=node.lineno,
                rule_id=CounterDisciplineRule.rule_id,
                message=msg,
            )
        )

    @staticmethod
    def _base_is_stats(base: ast.AST, tainted: frozenset[str]) -> bool:
        for n in ast.walk(base):
            if isinstance(n, ast.Attribute) and n.attr == "stats":
                return True
            if isinstance(n, ast.Name) and (
                n.id == "stats" or n.id in tainted
            ):
                return True
        return False


@register
class CounterDisciplineRule(Rule):
    rule_id = "counter-discipline"
    description = (
        "every incremented SimStats/CoreStats attribute must be a "
        "declared field (catches typo'd counters __slots__ misses on "
        "hoisted locals)"
    )
    scope_dirs = SIMULATOR_SCOPE

    def check(self, project: Project) -> Iterable[Finding]:
        stats_file = project.find_module("stats.py")
        if stats_file is None:
            return
        declared = declared_counters(stats_file)
        if declared is None:
            return
        fields, props = declared
        for sf in self.files(project):
            assert isinstance(sf, SourceFile)
            yield from _Checker(sf, fields, props).run()
