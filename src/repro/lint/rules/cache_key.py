"""Rule: every ``SystemConfig`` field round-trips through ``config_io``.

The parallel runner's persistent cache keys a result by a content hash
of the run recipe, whose machine description is the *serialised*
``SystemConfig``.  A field that exists on the dataclass but is missing
from :mod:`repro.config_io` therefore changes simulation behaviour
without changing the cache key -- two different machines alias the same
``.repro_cache`` entry and one of them silently gets the other's
results.  This happened twice in recent history (``AuditParams`` and
``TelemetryParams`` both had to be hand-threaded through
``SystemConfig`` *and* ``config_io`` with a ``CACHE_VERSION`` bump);
this rule makes the omission a lint failure instead of a code-review
memory test.

Statically, the rule cross-references two files:

* ``params.py`` -- the ``SystemConfig`` dataclass: every annotated field,
  and which of them are themselves params/geometry dataclasses declared
  in the same module (the *sections*);
* ``config_io.py`` -- the ``_SECTIONS`` registry (section name -> class)
  and the ``known`` scalar-key set in ``config_from_dict``.

Checks: every section-typed field is registered in ``_SECTIONS`` under
its own name *with the matching class*; every scalar field appears in
the ``known`` key set; and every ``_SECTIONS``/``known`` entry still
names a live ``SystemConfig`` field (staleness cuts both ways).  Nested
``*Params`` fields need no per-field check: ``config_to_dict`` uses
``dataclasses.asdict`` and ``config_from_dict`` validates against
``dataclasses.fields(cls)``, so nested completeness follows from the
top-level registration this rule enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.lint.model import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.visitor import decorator_names

_CONFIG_CLASS = "SystemConfig"


@dataclass(frozen=True)
class _Field:
    name: str
    annotation: Optional[str]
    line: int


def _annotation_name(node: ast.expr) -> Optional[str]:
    """The flat class name of a simple annotation (``AuditParams``,
    ``"SystemConfig"`` string forms); None for anything fancier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dataclass_names(tree: ast.Module) -> set[str]:
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        and "dataclass" in decorator_names(node)
    }


def _system_config_fields(tree: ast.Module) -> Optional[list[_Field]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
            fields = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append(
                        _Field(
                            name=stmt.target.id,
                            annotation=_annotation_name(stmt.annotation),
                            line=stmt.lineno,
                        )
                    )
            return fields
    return None


def _bound_value(node: ast.stmt, name: str) -> Optional[ast.expr]:
    """The RHS if ``node`` binds ``name`` (plain or annotated assign)."""
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
        and node.targets[0].id == name
    ):
        return node.value
    if (
        isinstance(node, ast.AnnAssign)
        and isinstance(node.target, ast.Name)
        and node.target.id == name
    ):
        return node.value
    return None


def _sections_registry(
    tree: ast.Module,
) -> Optional[tuple[dict[str, str], int]]:
    """``({section_key: class_name}, lineno)`` from ``_SECTIONS``."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = _bound_value(node, "_SECTIONS")
        if isinstance(value, ast.Dict):
            out: dict[str, str] = {}
            for key, item in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    cls = _annotation_name(item)
                    out[key.value] = cls if cls is not None else "?"
            return out, node.lineno
    return None


def _known_scalars(tree: ast.Module) -> Optional[tuple[set[str], int]]:
    """String keys of the ``known = {...} | ...`` scalar-key set."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = _bound_value(node, "known")
        if value is not None:
            keys = {
                n.value
                for n in ast.walk(value)
                if isinstance(n, ast.Constant) and isinstance(n.value, str)
            }
            return keys, node.lineno
    return None


@register
class CacheKeyCompletenessRule(Rule):
    rule_id = "cache-key-completeness"
    description = (
        "every SystemConfig field must be serialised by config_io "
        "(missing fields silently alias distinct machines in the "
        "persistent result cache)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        params = project.find_module("params.py")
        config_io = project.find_module("config_io.py")
        if params is None or config_io is None:
            return
        if params.tree is None or config_io.tree is None:
            return
        fields = _system_config_fields(params.tree)
        if fields is None:
            return

        dataclasses_here = _dataclass_names(params.tree)
        sections = _sections_registry(config_io.tree)
        known = _known_scalars(config_io.tree)
        if sections is None:
            yield Finding(
                file=config_io.rel,
                line=1,
                rule_id=self.rule_id,
                message=(
                    "no _SECTIONS registry found; config_io cannot "
                    "deserialise SystemConfig sections"
                ),
            )
            return
        section_map, sections_line = sections
        known_keys, known_line = known if known is not None else (set(), 1)

        field_names = {f.name for f in fields}
        for f in fields:
            is_section = (
                f.annotation is not None
                and f.annotation in dataclasses_here
            )
            if is_section:
                registered = section_map.get(f.name)
                if registered is None:
                    yield Finding(
                        file=params.rel,
                        line=f.line,
                        rule_id=self.rule_id,
                        message=(
                            f"SystemConfig field {f.name!r} "
                            f"({f.annotation}) is not registered in "
                            f"config_io._SECTIONS: it will not "
                            f"deserialise and the recipe cache key "
                            f"loses a dimension"
                        ),
                    )
                elif registered != f.annotation:
                    yield Finding(
                        file=config_io.rel,
                        line=sections_line,
                        rule_id=self.rule_id,
                        message=(
                            f"_SECTIONS maps {f.name!r} to "
                            f"{registered}, but SystemConfig declares "
                            f"it as {f.annotation}"
                        ),
                    )
            elif f.name not in known_keys:
                yield Finding(
                    file=params.rel,
                    line=f.line,
                    rule_id=self.rule_id,
                    message=(
                        f"SystemConfig scalar field {f.name!r} is "
                        f"missing from config_io's known key set: "
                        f"config_from_dict would reject it as unknown"
                    ),
                )
        for key in sorted(section_map):
            if key not in field_names:
                yield Finding(
                    file=config_io.rel,
                    line=sections_line,
                    rule_id=self.rule_id,
                    message=(
                        f"_SECTIONS registers {key!r}, which is not a "
                        f"SystemConfig field (stale entry)"
                    ),
                )
        for key in sorted(known_keys - field_names):
            yield Finding(
                file=config_io.rel,
                line=known_line,
                rule_id=self.rule_id,
                message=(
                    f"config_io accepts key {key!r}, which is not a "
                    f"SystemConfig field (stale entry)"
                ),
            )
