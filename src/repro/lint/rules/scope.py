"""Shared rule scopes."""

from __future__ import annotations

#: Directories whose code feeds cached simulation results.  Workloads,
#: security harnesses and experiment drivers intentionally sit outside:
#: they use seeded RNG by construction and never run inside the engine's
#: per-access loop.
SIMULATOR_SCOPE = frozenset(
    ("cache", "core", "coherence", "hierarchy", "schemes", "sim")
)
