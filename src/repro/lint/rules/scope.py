"""Shared rule scopes."""

from __future__ import annotations

#: Directories whose code feeds cached simulation results.  Workloads,
#: security harnesses and experiment drivers intentionally sit outside:
#: they use seeded RNG by construction and never run inside the engine's
#: per-access loop.  Scope matching is by path component, so ``sim``
#: already covers nested packages; ``fast`` is listed explicitly so the
#: array-state engine (``repro.sim.fast``) stays covered even if it is
#: ever promoted to a top-level package.
SIMULATOR_SCOPE = frozenset(
    ("cache", "core", "coherence", "hierarchy", "schemes", "sim", "fast")
)
