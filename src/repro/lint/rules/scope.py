"""Shared rule scopes."""

from __future__ import annotations

#: Directories whose code feeds cached simulation results.  Workloads,
#: security harnesses and experiment drivers intentionally sit outside:
#: they use seeded RNG by construction and never run inside the engine's
#: per-access loop.  Scope matching is by path component, so ``sim``
#: already covers nested packages; ``fast`` is listed explicitly so the
#: array-state engine (``repro.sim.fast``) stays covered even if it is
#: ever promoted to a top-level package.
SIMULATOR_SCOPE = frozenset(
    ("cache", "core", "coherence", "hierarchy", "schemes", "sim", "fast")
)

#: Directories holding threaded / forked code: the HTTP job service,
#: the observability writers it shares with the CLI, and the parallel
#: runner whose pool workers the service dispatches to.  The
#: concurrency rules only engage classes that construct a ``threading``
#: lock, so including all of ``sim`` costs nothing (the simulator core
#: is single-threaded by design and must stay that way).
CONCURRENCY_SCOPE = frozenset(("service", "obs", "sim"))

#: Where bitwise determinism is enforced.  PR 10 widened this beyond
#: the simulator: the service serves cached results whose byte-identity
#: contract is only as strong as the code around the cache, and the
#: observability layer's wall-clock use must be *visible* (each read
#: carries a rationale suppression) rather than assumed harmless.
DETERMINISM_SCOPE = SIMULATOR_SCOPE | frozenset(("service", "obs"))
