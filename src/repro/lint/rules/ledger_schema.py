"""Rule: the run-ledger record schema, its writers and the docs agree.

The run ledger (:mod:`repro.obs.ledger`) is append-only provenance: a
JSONL file other tooling -- ``repro obs``, dashboards, the regression
gate -- parses long after the writing process is gone.  Its schema lives
in three artefacts: the ``LedgerRecord`` dataclass declares the fields,
every ``LedgerRecord(...)`` construction site populates them, and
docs/OBSERVABILITY.md documents one table row per field.  Three
artefacts, three ways to drift.  This rule pins them together:

* every ``LedgerRecord(...)`` call passes **every declared field as an
  explicit keyword** -- no positional args, no omissions-to-default, no
  stray keywords.  A writer that silently relies on a default is how a
  field goes stale without anyone noticing (``**kwargs`` splats are
  findings too: they hide the field list from this check);
* every declared field appears in the Field table of
  docs/OBSERVABILITY.md, and every documented field is still declared
  (no ghost rows).

The rule is inert when the project has no ``obs/ledger.py`` (pre-ledger
trees lint clean), and the doc check is skipped when the doc or its
Field table is absent -- the writer check alone still runs.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from repro.lint.model import Finding
from repro.lint.project import DocFile, Project, SourceFile
from repro.lint.registry import Rule, register

_DOC_NAME = "OBSERVABILITY.md"

#: Header row of the ledger field table in the observability doc.
_FIELD_TABLE_HEADER = re.compile(
    r"^\|\s*Field\s*\|", re.IGNORECASE
)
_FIELD_TABLE_ROW = re.compile(r"^\|\s*`(?P<field>[A-Za-z0-9_]+)`\s*\|")


def declared_fields(
    tree: ast.Module,
) -> Optional[dict[str, int]]:
    """``{field: lineno}`` from the ``LedgerRecord`` dataclass body;
    None when the module does not define the class."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "LedgerRecord":
            out: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    out[stmt.target.id] = stmt.lineno
            return out
    return None


def documented_fields(doc: DocFile) -> dict[str, int]:
    """``{field: lineno}`` from the Field table."""
    out: dict[str, int] = {}
    in_table = False
    for lineno, line in enumerate(doc.text.splitlines(), 1):
        if _FIELD_TABLE_HEADER.match(line):
            in_table = True
            continue
        if not in_table:
            continue
        if not line.lstrip().startswith("|"):
            in_table = False
            continue
        m = _FIELD_TABLE_ROW.match(line)
        if m is None:
            continue  # the |---| separator row
        out[m.group("field")] = lineno
    return out


def _constructor_sites(
    sf: SourceFile,
) -> Iterable[ast.Call]:
    tree = sf.tree
    if tree is None:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name == "LedgerRecord":
                yield node


@register
class LedgerSchemaSyncRule(Rule):
    rule_id = "ledger-schema-sync"
    description = (
        "LedgerRecord fields, every LedgerRecord(...) writer site and "
        "the field table in docs/OBSERVABILITY.md must agree"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        ledger = project.find_module("ledger.py")
        if ledger is None or ledger.tree is None:
            return
        declared = declared_fields(ledger.tree)
        if declared is None:
            return
        fields = set(declared)

        # -- every writer passes exactly the declared fields ---------------
        for sf in project.files:
            if not isinstance(sf, SourceFile):
                continue
            for call in _constructor_sites(sf):
                if call.args:
                    yield Finding(
                        file=sf.rel,
                        line=call.lineno,
                        rule_id=self.rule_id,
                        message=(
                            "LedgerRecord(...) must pass every field as "
                            "an explicit keyword (positional args hide "
                            "schema drift)"
                        ),
                    )
                    continue
                passed: set[str] = set()
                splat = False
                for kw in call.keywords:
                    if kw.arg is None:
                        splat = True
                    else:
                        passed.add(kw.arg)
                if splat:
                    yield Finding(
                        file=sf.rel,
                        line=call.lineno,
                        rule_id=self.rule_id,
                        message=(
                            "LedgerRecord(...) must not use a **kwargs "
                            "splat: the field list must be visible to "
                            "the schema-sync check"
                        ),
                    )
                    continue
                for field in sorted(fields - passed):
                    yield Finding(
                        file=sf.rel,
                        line=call.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"LedgerRecord(...) omits declared field "
                            f"{field!r}; every writer must set every "
                            f"field explicitly"
                        ),
                    )
                for field in sorted(passed - fields):
                    yield Finding(
                        file=sf.rel,
                        line=call.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"LedgerRecord(...) passes unknown field "
                            f"{field!r} (not declared on the dataclass)"
                        ),
                    )

        # -- the documentation table matches the declaration ---------------
        doc = project.find_doc(_DOC_NAME)
        if doc is None:
            return
        documented = documented_fields(doc)
        if not documented:
            return
        for field, line in sorted(declared.items()):
            if field not in documented:
                yield Finding(
                    file=ledger.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"ledger field {field!r} is missing from the "
                        f"Field table in {doc.rel}"
                    ),
                )
        for field, line in sorted(documented.items()):
            if field not in declared:
                yield Finding(
                    file=doc.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"Field table documents {field!r}, which "
                        f"LedgerRecord does not declare (ghost row)"
                    ),
                )
