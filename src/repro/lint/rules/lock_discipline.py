"""Rule: shared state honours its declared lock, and the contract is live.

The service layer (:mod:`repro.service.jobs`) keeps every piece of
cross-thread state behind one lock; the correctness argument in
docs/ARCHITECTURE.md ("all three resolution paths run under one lock")
is only as good as every individual access site.  This rule turns that
argument into a checked contract:

* an attribute declared ``# repro-lint: guarded-by[_lock]`` must hold
  ``self._lock`` (or be inside a ``# repro-lint: holds[_lock]`` helper)
  at **every** access outside ``__init__``;
* a guarded object must not *escape* its critical section: returned
  bare (unless the method is a ``holds`` helper, i.e. the caller owns
  the lock), yielded to a generator consumer while the lock is held, or
  captured by a closure handed to an executor / future callback;
* staleness both ways is a finding, mirroring the cache-key rule:
  a declaration whose attribute is never accessed outside ``__init__``
  is dead (``declared-but-never-guarded``), and an undeclared attribute
  that is in fact consistently locked must be annotated
  (``guarded-but-never-declared``) so the contract stays written down;
* an undeclared attribute accessed *sometimes* locked, sometimes not --
  with at least one bare write -- is reported as a race signal: exactly
  the single unguarded write the tier-1 suite cannot catch.

The rule only engages classes that own a ``threading`` lock; pure data
classes and the simulator core never construct one, so the service/obs
scope is precise.  It also pins the "Concurrency contracts" tables in
docs/STATIC_ANALYSIS.md (rule list and marker vocabulary) to the code,
the same way the event-schema rule pins its kind table.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.lint import dataflow
from repro.lint.model import Finding
from repro.lint.project import DocFile, Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import CONCURRENCY_SCOPE

_DOC_NAME = "STATIC_ANALYSIS.md"

#: The three concurrency rule ids the docs table must list.
CONCURRENCY_RULES = ("fork-safety", "lock-discipline", "lock-order")

_RULE_TABLE_HEADER = re.compile(
    r"^\|\s*Rule\s*\|\s*Checks\s*\|", re.IGNORECASE
)
_MARKER_TABLE_HEADER = re.compile(
    r"^\|\s*Marker\s*\|\s*Placement\s*\|", re.IGNORECASE
)
_TABLE_CELL = re.compile(r"^\|\s*`(?P<name>[^`]+)`\s*\|")


def _table_rows(doc: DocFile, header: re.Pattern[str]) -> dict[str, int]:
    """``{first-cell-backtick-name: lineno}`` of the table under
    ``header`` (first match wins)."""
    out: dict[str, int] = {}
    in_table = False
    for lineno, line in enumerate(doc.text.splitlines(), 1):
        if header.match(line):
            in_table = True
            continue
        if not in_table:
            continue
        if not line.lstrip().startswith("|"):
            break
        m = _TABLE_CELL.match(line)
        if m is not None:
            out[m.group("name")] = lineno
    return out


class _ClassChecker:
    """All lock-discipline findings for one lock-bearing class."""

    rule_id = "lock-discipline"

    def __init__(self, cls: dataflow.ClassState) -> None:
        self.cls = cls

    def _finding(self, line: int, message: str) -> Finding:
        return Finding(
            file=self.cls.source.rel,
            line=line,
            rule_id=self.rule_id,
            message=f"{self.cls.name}: {message}",
        )

    def _holds_lock(self, method: str, lock: str) -> bool:
        """True when ``method`` is annotated as entered with ``lock``."""
        promised = self.cls.holds.get(method)
        if promised is None:
            return False
        return lock in frozenset(self.cls.canonical(p) for p in promised)

    def run(self) -> Iterator[Finding]:
        cls = self.cls
        declared_attrs = set(cls.declared)

        # -- declarations name real locks ---------------------------------
        for attr, (lock, line) in sorted(cls.declared.items()):
            if lock not in cls.locks:
                yield self._finding(
                    line,
                    f"attribute {attr!r} is declared guarded-by[{lock}] "
                    f"but the class constructs no lock named {lock!r}",
                )
        for method, promised in sorted(cls.holds.items()):
            for lock in sorted(promised):
                if lock not in cls.locks:
                    yield self._finding(
                        cls.method_lines.get(method, cls.node.lineno),
                        f"method {method}() is declared holds[{lock}] "
                        f"but the class constructs no lock named "
                        f"{lock!r}",
                    )

        # -- every access to declared state is under its lock -------------
        reported: set[tuple[str, int]] = set()
        for access in cls.accesses:
            decl = cls.declared.get(access.attr)
            if decl is None or access.in_init:
                continue
            lock = cls.canonical(decl[0])
            if lock in access.held:
                continue
            key = (access.attr, access.line)
            if key in reported:
                continue
            reported.add(key)
            verb = "write to" if access.write else "read of"
            yield self._finding(
                access.line,
                f"unguarded {verb} {access.attr!r} (declared "
                f"guarded-by[{decl[0]}]); take `with self.{lock}:` or "
                f"annotate the method holds[{lock}]",
            )

        # -- escapes of guarded objects -----------------------------------
        for ret in cls.returns:
            decl = cls.declared.get(ret.attr)
            if decl is None:
                continue
            lock = cls.canonical(decl[0])
            if self._holds_lock(ret.method, lock):
                # A holds[] helper returning guarded state hands it to a
                # caller that still owns the lock; that is the contract.
                continue
            yield self._finding(
                ret.line,
                f"{ret.method}() returns guarded attribute {ret.attr!r} "
                f"to a caller outside the {decl[0]} critical section; "
                f"return a copy/snapshot instead",
            )
        for y in cls.yields:
            locks = ", ".join(sorted(y.held))
            yield self._finding(
                y.line,
                f"{y.method}() yields while holding {locks}: the "
                f"consumer runs inside the critical section for an "
                f"unbounded time; snapshot under the lock, yield outside",
            )
        for cap in cls.captures:
            leaked = sorted(cap.attrs & declared_attrs)
            if not leaked:
                continue
            yield self._finding(
                cap.line,
                f"closure passed to .{cap.api}() captures guarded "
                f"attribute(s) {', '.join(repr(a) for a in leaked)}; it "
                f"runs on another thread without the lock -- pass a "
                f"snapshot or re-acquire inside",
            )

        # -- staleness both ways ------------------------------------------
        by_attr: dict[str, list[dataflow.AttrAccess]] = {}
        for access in cls.accesses:
            by_attr.setdefault(access.attr, []).append(access)

        for attr, (lock, line) in sorted(cls.declared.items()):
            outside = [a for a in by_attr.get(attr, []) if not a.in_init]
            if not outside:
                yield self._finding(
                    line,
                    f"attribute {attr!r} is declared guarded-by[{lock}] "
                    f"but never accessed outside __init__; the "
                    f"declaration is stale -- delete it or the attribute",
                )

        for attr in sorted(set(by_attr) - declared_attrs):
            outside = [a for a in by_attr[attr] if not a.in_init]
            if not outside or all(not a.write for a in outside):
                # Read-only after __init__: immutable-after-publish, no
                # lock contract to declare.
                continue
            common = dataflow.common_lock(outside)
            if common is not None:
                first = min(a.line for a in outside)
                yield self._finding(
                    first,
                    f"attribute {attr!r} is accessed under "
                    f"self.{common} at every site but carries no "
                    f"declaration; annotate its __init__ assignment "
                    f"`# repro-lint: guarded-by[{common}]`",
                )
                continue
            ever_locked = any(a.held for a in outside)
            bare_writes = [a for a in outside if a.write and not a.held]
            if ever_locked and bare_writes:
                worst = min(bare_writes, key=lambda a: a.line)
                yield self._finding(
                    worst.line,
                    f"race signal: {attr!r} is written here without a "
                    f"lock but accessed under one elsewhere in "
                    f"{cls.name}; guard this site or split the "
                    f"attribute",
                )


@register
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    description = (
        "declared guarded-by state is locked at every access, never "
        "escapes its critical section, and the contract comments stay "
        "in sync with reality (staleness both ways is a finding)"
    )
    scope_dirs = CONCURRENCY_SCOPE

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in self.files(project):
            assert isinstance(sf, SourceFile)
            for cls in dataflow.analyze_file(sf):
                if not cls.has_locks and not cls.declared and not cls.holds:
                    continue
                yield from _ClassChecker(cls).run()
        yield from self._check_docs(project)

    def _check_docs(self, project: Project) -> Iterator[Finding]:
        doc = project.find_doc(_DOC_NAME)
        if doc is None or "Concurrency contracts" not in doc.text:
            return
        rule_rows = _table_rows(doc, _RULE_TABLE_HEADER)
        for rule in CONCURRENCY_RULES:
            if rule not in rule_rows:
                yield Finding(
                    file=doc.rel,
                    line=1,
                    rule_id=self.rule_id,
                    message=(
                        f"concurrency rule {rule!r} is missing from the "
                        f"rule table in {doc.rel}"
                    ),
                )
        marker_rows = _table_rows(doc, _MARKER_TABLE_HEADER)
        documented_markers = {
            name.split("[")[0].lstrip("# ").replace("repro-lint:", "").strip()
            for name in marker_rows
        }
        for marker in dataflow.CONTRACT_MARKERS:
            if marker not in documented_markers:
                yield Finding(
                    file=doc.rel,
                    line=1,
                    rule_id=self.rule_id,
                    message=(
                        f"contract marker {marker!r} is missing from "
                        f"the vocabulary table in {doc.rel}"
                    ),
                )
        for name, line in sorted(marker_rows.items()):
            stripped = (
                name.split("[")[0]
                .lstrip("# ")
                .replace("repro-lint:", "")
                .strip()
            )
            if stripped not in dataflow.CONTRACT_MARKERS:
                yield Finding(
                    file=doc.rel,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"vocabulary table documents marker {name!r}, "
                        f"which repro.lint.dataflow does not implement "
                        f"(ghost row)"
                    ),
                )
