"""Rule: the acquires-while-holding graph must be acyclic.

Deadlock needs two ingredients: more than one lock, and two code paths
that take them in opposite orders.  The service layer currently has a
single ``JobManager`` lock precisely to keep this graph trivial -- and
the ROADMAP's residuals (multi-host workers, result eviction) are the
kind of change that quietly adds a second one.  This rule makes the
ordering invariant checkable before the first stuck thread:

* every ``with self.<lock>:`` entered while other locks are held adds
  ``held -> acquired`` edges;
* ``self.m(...)`` calls propagate: a call made with lock ``A`` held
  reaches every lock the callee (transitively, through further self
  calls) acquires, so a cycle split across helper methods is still
  seen;
* a ``# repro-lint: holds[_lock]`` annotation on a helper counts as
  holding the lock at entry, so annotated internal APIs participate in
  the graph exactly as their callers experience them.

Self-edges are ignored: re-acquiring an ``RLock`` you already hold is
the documented reentrancy pattern (``_publish`` runs under ``submit``'s
lock via an inline future callback).  Cycles are reported once per
cycle, deterministically, with the acquire sites that close them.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lint import dataflow
from repro.lint.model import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import CONCURRENCY_SCOPE


def _method_lock_summaries(
    cls: dataflow.ClassState,
) -> dict[str, frozenset[str]]:
    """``{method: locks it (transitively) acquires}`` via self calls."""
    direct: dict[str, set[str]] = {m: set() for m in cls.method_lines}
    for event in cls.acquires:
        direct.setdefault(event.method, set()).add(event.lock)
    calls: dict[str, set[str]] = {m: set() for m in direct}
    for call in cls.self_calls:
        if call.callee in direct:
            calls.setdefault(call.method, set()).add(call.callee)
    # Fixpoint over the (small) intra-class call graph.
    changed = True
    while changed:
        changed = False
        for method, callees in calls.items():
            for callee in callees:
                before = len(direct[method])
                direct[method] |= direct[callee]
                if len(direct[method]) != before:
                    changed = True
    return {m: frozenset(locks) for m, locks in direct.items()}


def _edges(
    cls: dataflow.ClassState,
) -> dict[tuple[str, str], tuple[int, str]]:
    """``{(held, acquired): (line, method)}`` -- first site per edge."""
    out: dict[tuple[str, str], tuple[int, str]] = {}
    summaries = _method_lock_summaries(cls)

    def add(held: str, acquired: str, line: int, method: str) -> None:
        if held == acquired:
            return  # RLock reentrancy, not an ordering edge
        key = (held, acquired)
        if key not in out or line < out[key][0]:
            out[key] = (line, method)

    for event in cls.acquires:
        for held in event.held:
            add(held, event.lock, event.line, event.method)
    for call in cls.self_calls:
        if not call.held:
            continue
        for acquired in summaries.get(call.callee, frozenset()):
            for held in call.held:
                add(held, acquired, call.line, call.method)
    return out


def _find_cycles(
    edges: dict[tuple[str, str], tuple[int, str]]
) -> list[tuple[str, ...]]:
    """Every elementary cycle, canonicalised and deduplicated."""
    graph: dict[str, list[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, []).append(acquired)
        graph.setdefault(acquired, [])
    for node in graph:
        graph[node].sort()

    cycles: set[tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: list[str]) -> None:
        for nxt in graph[node]:
            if nxt == start and len(path) > 1:
                # Canonical rotation: start the cycle at its min node.
                pivot = path.index(min(path))
                cycles.add(tuple(path[pivot:] + path[:pivot]))
            elif nxt not in path and nxt > start:
                # Only explore nodes > start so each cycle is found from
                # its minimum node exactly once.
                dfs(start, nxt, path + [nxt])

    for node in sorted(graph):
        dfs(node, node, [node])
    return sorted(cycles)


@register
class LockOrderRule(Rule):
    rule_id = "lock-order"
    description = (
        "the acquires-while-holding graph has no cycles (two paths "
        "taking two locks in opposite orders can deadlock)"
    )
    scope_dirs = CONCURRENCY_SCOPE

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in self.files(project):
            assert isinstance(sf, SourceFile)
            for cls in dataflow.analyze_file(sf):
                if not cls.has_locks:
                    continue
                yield from self._check_class(cls)

    def _check_class(self, cls: dataflow.ClassState) -> Iterator[Finding]:
        edges = _edges(cls)
        for cycle in _find_cycles(edges):
            pairs = list(zip(cycle, cycle[1:] + (cycle[0],)))
            sites = []
            first_line = None
            for held, acquired in pairs:
                line, method = edges[(held, acquired)]
                sites.append(
                    f"{method}() takes {acquired} while holding {held} "
                    f"(line {line})"
                )
                if first_line is None or line < first_line:
                    first_line = line
            order = " -> ".join(cycle + (cycle[0],))
            yield Finding(
                file=cls.source.rel,
                line=first_line if first_line is not None else 1,
                rule_id=self.rule_id,
                message=(
                    f"{cls.name}: lock-order cycle {order}: "
                    + "; ".join(sites)
                    + " -- pick one global order and stick to it"
                ),
            )
