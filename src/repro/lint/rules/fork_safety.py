"""Rule: code dispatched to a worker pool is fork-safe.

A ``ProcessPoolExecutor`` worker is a forked/spawned child: a module
lock it inherits may be permanently held (fork copies the locked
state), and any file handle it opens races every sibling writing the
same path.  The repo's discipline is that workers compute and the
parent does the I/O bookkeeping -- most importantly, **the run ledger
is appended only by the parent process**, with a single ``os.write`` on
an ``O_APPEND`` descriptor per record, so records from concurrent runs
interleave but never interleave *within* a record.

This rule enforces all of that statically:

* every function reachable from a pool dispatch site
  (``executor.submit(f, ...)``, ``pool.imap(f, ...)``, ...) is resolved
  (bare name in the same module, ``mod.func`` across modules) and its
  transitive same-project callees are walked;
* inside that worker cone, acquiring a module-level lock (``with
  LOCK:`` / ``LOCK.acquire()``) or opening a file handle (``open``,
  ``os.open``, ``gzip.open``, ``path.open()``, ...) is a finding --
  unless the function is whitelisted with ``# repro-lint: fork-safe``
  on its ``def`` line, which asserts the function was audited for pool
  execution and stops the walk;
* reaching the ledger writers (``append_record`` / ``_ledger_append``)
  from a worker is always a finding: ledger appends are
  parent-process-only, whitelist or not;
* the ledger writer itself must honour the single-write discipline:
  ``append_record`` opens with ``os.open(..., O_APPEND)`` and issues
  exactly one ``os.write``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Union

from repro.lint import dataflow
from repro.lint.model import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.scope import CONCURRENCY_SCOPE
from repro.lint.visitor import dotted_name, mentions_attribute, mentions_name

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Pool methods whose first function argument runs in a worker.
POOL_DISPATCH = frozenset(
    ("submit", "map", "imap", "imap_unordered", "apply", "apply_async",
     "starmap")
)

#: Call names that open an OS-level file handle.
_OPENERS = frozenset(("open", "fdopen"))

#: The parent-process-only ledger entry points.
LEDGER_WRITERS = frozenset(("append_record", "_ledger_append"))


def _module_functions(sf: SourceFile) -> dict[str, _FuncDef]:
    tree = sf.tree
    if tree is None:
        return {}
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class _WorkerWalk:
    """Transitive analysis of one dispatched function."""

    rule_id = "fork-safety"

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: list[Finding] = []
        self._visited: set[tuple[str, str]] = set()
        self._funcs: dict[str, dict[str, _FuncDef]] = {}
        self._locks: dict[str, dict[str, int]] = {}
        self._safe_lines: dict[str, frozenset[int]] = {}

    # -- per-file caches ---------------------------------------------------

    def _file_funcs(self, sf: SourceFile) -> dict[str, _FuncDef]:
        if sf.rel not in self._funcs:
            self._funcs[sf.rel] = _module_functions(sf)
        return self._funcs[sf.rel]

    def _file_locks(self, sf: SourceFile) -> dict[str, int]:
        if sf.rel not in self._locks:
            tree = sf.tree
            self._locks[sf.rel] = (
                dataflow.module_locks(tree) if tree is not None else {}
            )
        return self._locks[sf.rel]

    def _fork_safe(self, sf: SourceFile, func: _FuncDef) -> bool:
        if sf.rel not in self._safe_lines:
            self._safe_lines[sf.rel] = dataflow.fork_safe_lines(sf.text)
        return func.lineno in self._safe_lines[sf.rel]

    # -- resolution --------------------------------------------------------

    def resolve(
        self, sf: SourceFile, func_expr: ast.expr
    ) -> Optional[tuple[SourceFile, _FuncDef]]:
        """The (file, def) a dispatch argument names, when findable."""
        if isinstance(func_expr, ast.Name):
            func = self._file_funcs(sf).get(func_expr.id)
            if func is not None:
                return (sf, func)
            return None
        name = dotted_name(func_expr)
        if name is None:
            return None
        head, _, tail = name.rpartition(".")
        if not head:
            return None
        other = self.project.find_module(f"{head.split('.')[-1]}.py")
        if other is None:
            return None
        func = self._file_funcs(other).get(tail)
        if func is None:
            return None
        return (other, func)

    # -- the walk ----------------------------------------------------------

    def check(self, sf: SourceFile, func: _FuncDef, origin: str) -> None:
        key = (sf.rel, func.name)
        if key in self._visited:
            return
        self._visited.add(key)
        if self._fork_safe(sf, func):
            return  # audited: the whitelist stops the walk here
        locks = self._file_locks(sf)
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    self._check_lock_use(sf, item.context_expr, locks, origin)
            if isinstance(node, ast.Call):
                self._check_call(sf, node, locks, origin)

    def _report(self, sf: SourceFile, line: int, message: str) -> None:
        self.findings.append(
            Finding(
                file=sf.rel, line=line, rule_id=self.rule_id,
                message=message,
            )
        )

    def _check_lock_use(
        self,
        sf: SourceFile,
        expr: ast.expr,
        locks: dict[str, int],
        origin: str,
    ) -> None:
        name = dotted_name(expr)
        if name is not None and name.split(".")[0] in locks:
            self._report(
                sf,
                expr.lineno,
                f"pool worker (dispatched via {origin}) enters `with "
                f"{name}:` -- a module lock inherited across fork may "
                f"already be held; mark the function `# repro-lint: "
                f"fork-safe` only after removing the lock",
            )

    def _check_call(
        self,
        sf: SourceFile,
        node: ast.Call,
        locks: dict[str, int],
        origin: str,
    ) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        head, _, tail = name.rpartition(".")
        if tail == "acquire" and (not head or head.split(".")[0] in locks):
            self._report(
                sf,
                node.lineno,
                f"pool worker (dispatched via {origin}) calls "
                f"{name}(): lock acquisition in a forked child can "
                f"deadlock on state copied mid-hold",
            )
        if tail in LEDGER_WRITERS:
            self._report(
                sf,
                node.lineno,
                f"pool worker (dispatched via {origin}) reaches the "
                f"run ledger via {name}(): ledger appends are "
                f"parent-process-only (one O_APPEND write per record)",
            )
            return
        if name in _OPENERS or (
            tail in _OPENERS and head.split(".")[-1] in
            ("os", "io", "gzip", "bz2", "lzma")
        ) or (tail == "open" and head):
            self._report(
                sf,
                node.lineno,
                f"pool worker (dispatched via {origin}) opens a file "
                f"handle via {name}(); workers must compute, the "
                f"parent does the I/O (or mark the audited function "
                f"`# repro-lint: fork-safe`)",
            )
            return
        # Recurse into same-project callees.
        resolved = self.resolve(sf, node.func)
        if resolved is not None:
            self.check(resolved[0], resolved[1], origin)


def _ledger_discipline(project: Project) -> Iterator[Finding]:
    """``append_record`` uses one O_APPEND descriptor and one write."""
    sf = project.find_module("ledger.py")
    if sf is None or sf.tree is None:
        return
    func = _module_functions(sf).get("append_record")
    if func is None:
        return
    opens = [
        n
        for n in ast.walk(func)
        if isinstance(n, ast.Call) and dotted_name(n.func) == "os.open"
    ]
    writes = [
        n
        for n in ast.walk(func)
        if isinstance(n, ast.Call) and dotted_name(n.func) == "os.write"
    ]
    if not opens:
        yield Finding(
            file=sf.rel,
            line=func.lineno,
            rule_id="fork-safety",
            message=(
                "append_record() must open the ledger with "
                "os.open(..., O_APPEND | O_CREAT | O_WRONLY); buffered "
                "append modes do not guarantee atomic record appends"
            ),
        )
    else:
        for call in opens:
            if not any(
                mentions_attribute(arg, "O_APPEND")
                or mentions_name(arg, "O_APPEND")
                for arg in call.args
            ):
                yield Finding(
                    file=sf.rel,
                    line=call.lineno,
                    rule_id="fork-safety",
                    message=(
                        "append_record() opens the ledger without "
                        "O_APPEND: concurrent writers would interleave "
                        "bytes within records"
                    ),
                )
    if len(writes) != 1:
        yield Finding(
            file=sf.rel,
            line=func.lineno,
            rule_id="fork-safety",
            message=(
                f"append_record() issues {len(writes)} os.write calls; "
                f"the atomicity argument requires exactly one write of "
                f"the full record (one line, one syscall)"
            ),
        )


class _DispatchVisitor(ast.NodeVisitor):
    """Collects pool dispatch sites in one file."""

    def __init__(self) -> None:
        self.sites: list[tuple[ast.expr, str, int]] = []

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in POOL_DISPATCH
            and node.args
        ):
            self.sites.append(
                (node.args[0], node.func.attr, node.lineno)
            )
        self.generic_visit(node)


@register
class ForkSafetyRule(Rule):
    rule_id = "fork-safety"
    description = (
        "pool-dispatched functions take no module locks, open no file "
        "handles (unless marked fork-safe) and never touch the "
        "parent-process-only run ledger"
    )
    scope_dirs = CONCURRENCY_SCOPE

    def check(self, project: Project) -> Iterable[Finding]:
        walk = _WorkerWalk(project)
        for sf in self.files(project):
            assert isinstance(sf, SourceFile)
            tree = sf.tree
            if tree is None:
                continue
            visitor = _DispatchVisitor()
            visitor.visit(tree)
            for func_expr, api, lineno in visitor.sites:
                resolved = walk.resolve(sf, func_expr)
                if resolved is None:
                    continue  # method / external callable: out of scope
                origin = f"{sf.rel}:{lineno} .{api}()"
                walk.check(resolved[0], resolved[1], origin)
        yield from sorted(set(walk.findings))
        yield from _ledger_discipline(project)
