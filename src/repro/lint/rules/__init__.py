"""Built-in rules (importing this package registers them all)."""

from repro.lint.rules.scope import SIMULATOR_SCOPE  # noqa: F401
from repro.lint.rules import (  # noqa: F401
    cache_key,
    counters,
    determinism,
    event_schema,
    ledger_schema,
    telemetry_guard,
)
