"""Built-in rules (importing this package registers them all)."""

from repro.lint.rules.scope import (  # noqa: F401
    CONCURRENCY_SCOPE,
    DETERMINISM_SCOPE,
    SIMULATOR_SCOPE,
)
from repro.lint.rules import (  # noqa: F401
    cache_key,
    counters,
    determinism,
    event_schema,
    fork_safety,
    ledger_schema,
    lock_discipline,
    lock_order,
    telemetry_guard,
)
