"""The ``repro lint`` command-line front end.

Exit status: 0 clean, 1 findings, 2 usage error -- the same contract as
the runtime auditor's CLI path, so CI treats any nonzero as a failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.lint.baseline import compare, load_baseline, write_baseline
from repro.lint.model import findings_to_json
from repro.lint.project import LintError
from repro.lint.registry import all_rules
from repro.lint.runner import format_findings, lint_paths

#: What a bare ``repro lint`` scans: the package itself, plus the docs
#: tree (the event-schema rule reads docs/OBSERVABILITY.md).
DEFAULT_PATHS = ("src/repro", "docs")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint options (shared by ``repro lint`` and the script)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        dest="format",
        default="human",
        choices=("human", "json"),
        help="report format (default: human)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only this comma-separated subset of rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "compare against a recorded baseline: matched findings are "
            "reported but only NEW findings fail the run (exit 1)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the baseline and exit 0",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    rule_ids = (
        [tok.strip() for tok in args.rules.split(",") if tok.strip()]
        if args.rules
        else None
    )
    try:
        if args.baseline and args.write_baseline:
            raise LintError(
                "--baseline and --write-baseline are mutually exclusive"
            )
        paths = list(args.paths) if args.paths else _existing_defaults()
        findings = lint_paths(paths, rule_ids=rule_ids)
        if args.write_baseline:
            write_baseline(args.write_baseline, findings)
            print(
                f"repro lint: recorded {len(findings)} finding(s) to "
                f"{args.write_baseline}"
            )
            return 0
        if args.baseline:
            delta = compare(findings, load_baseline(args.baseline))
            if args.format == "json":
                print(findings_to_json(list(delta.new)))
            else:
                for finding in delta.new:
                    print(finding.format())
            print(delta.summary(args.baseline), file=sys.stderr)
            return 1 if delta.new else 0
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    print(format_findings(findings, args.format))
    return 1 if findings else 0


def _existing_defaults() -> list[str]:
    import pathlib

    paths = [p for p in DEFAULT_PATHS if pathlib.Path(p).exists()]
    if not paths:
        raise LintError(
            f"none of the default paths exist here: {DEFAULT_PATHS}; "
            f"run from the repository root or pass explicit paths"
        )
    return paths


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="static-analysis pass enforcing simulator invariants",
    )
    add_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
