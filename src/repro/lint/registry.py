"""Rule registry.

A rule is a class with a unique ``rule_id``, a one-line ``description``
and a ``check(project)`` method returning findings.  Registration is a
decorator so adding a rule is one import away; the CLI's ``--rules``
filter and ``--list-rules`` read the same registry.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional

from repro.lint.model import Finding
from repro.lint.project import LintError, Project


class Rule(abc.ABC):
    """Base class for lint rules."""

    #: Unique kebab-case identifier (used in reports and suppressions).
    rule_id: str = ""
    #: One-line summary shown by ``repro lint --list-rules``.
    description: str = ""
    #: Directory names this rule is scoped to (None = whole project).
    scope_dirs: Optional[frozenset[str]] = None

    @abc.abstractmethod
    def check(self, project: Project) -> Iterable[Finding]:
        """Yield every violation found in ``project``."""

    def files(self, project: Project) -> Iterable["object"]:
        """The project files this rule's scope selects."""
        if self.scope_dirs is None:
            return project.files
        return project.scoped(self.scope_dirs)


_RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    if cls.rule_id in _RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _RULES[cls.rule_id] = cls()
    return cls


def _load_builtin_rules() -> None:
    # Import for the registration side effect; idempotent.
    import repro.lint.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise LintError(
            f"unknown rule id {rule_id!r}; known rules: {known}"
        ) from None


def select_rules(ids: Optional[Iterable[str]]) -> list[Rule]:
    """The rules to run: all of them, or the ``ids`` subset."""
    if ids is None:
        return all_rules()
    return [get_rule(i) for i in ids]


RuleFactory = Callable[[], Rule]
