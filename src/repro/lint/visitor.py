"""The shared AST visitor framework.

:class:`LintVisitor` extends :class:`ast.NodeVisitor` with what every
rule here needs and the stdlib visitor lacks:

* an **ancestor stack** (``self.stack``), so a node can ask "am I inside
  an ``if`` whose test guards me?" without a second pass;
* the **enclosing function** (``self.current_function``);
* a ``report(node, message)`` helper that anchors a finding to the
  node's line in the file under analysis.

Plus module-level expression helpers used across rules: dotted-name
flattening, "does this expression mention X?" queries, and literal
string collection (for resolving ``emit(kind, ...)`` where ``kind`` is a
conditional expression over constants).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.lint.model import Finding
from repro.lint.project import SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class LintVisitor(ast.NodeVisitor):
    """AST visitor with ancestor tracking and finding collection."""

    rule_id = ""

    def __init__(self, source_file: SourceFile) -> None:
        self.source_file = source_file
        self.findings: list[Finding] = []
        self.stack: list[ast.AST] = []

    def visit(self, node: ast.AST) -> None:
        self.stack.append(node)
        try:
            super().visit(node)
        finally:
            self.stack.pop()

    @property
    def current_function(self) -> Optional[FunctionNode]:
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def ancestors(self) -> Iterator[ast.AST]:
        """Enclosing nodes, innermost first (excludes the current node)."""
        return reversed(self.stack[:-1])

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                file=self.source_file.rel,
                line=getattr(node, "lineno", 1),
                rule_id=self.rule_id,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        tree = self.source_file.tree
        if tree is not None:
            self.visit(tree)
        return self.findings


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def mentions_attribute(node: ast.AST, attr: str) -> bool:
    """True when any attribute access ``<x>.<attr>`` occurs in ``node``."""
    return any(
        isinstance(n, ast.Attribute) and n.attr == attr
        for n in ast.walk(node)
    )


def mentions_name(node: ast.AST, name: str) -> bool:
    """True when the bare name ``name`` is read anywhere in ``node``."""
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def string_constants(node: ast.AST) -> set[str]:
    """Every string literal appearing anywhere inside ``node``."""
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def decorator_names(node: ast.AST) -> set[str]:
    """Flat names of a class/function's decorators (``dataclass(...)``
    and ``dataclasses.dataclass`` both yield ``dataclass``)."""
    out: set[str] = set()
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            out.add(target.attr)
        elif isinstance(target, ast.Name):
            out.add(target.id)
    return out
