"""The unit of analysis: a set of parsed source and document files.

Rules never touch the filesystem themselves; they receive a
:class:`Project`, which owns file discovery, lazy AST parsing and the
per-file suppression maps.  Cross-file rules (cache-key completeness,
event-schema sync) locate their anchor files by *basename* through
:meth:`Project.find_module`, so the same rule code runs unchanged on the
real tree and on the miniature fixture trees the self-tests build.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from repro.lint.suppress import suppression_map


class LintError(RuntimeError):
    """Raised for unusable inputs (missing paths, unknown rule ids)."""


class SourceFile:
    """One Python source file: text, AST and suppression map, parsed once.

    ``rel`` is the display path (relative to the project root when
    possible) used in findings; ``scope_parts`` are its directory names
    relative to the root, which scoped rules match against (so
    ``src/repro/sim/engine.py`` is in the ``sim`` scope).
    """

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = path
        self.rel = rel.as_posix()
        self.scope_parts = frozenset(rel.parts[:-1])
        self.text = path.read_text()
        self._tree: Optional[ast.Module] = None
        self._suppressions: Optional[dict[int, frozenset[str]]] = None
        self.parse_error: Optional[SyntaxError] = None

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed module, or None when the file has a syntax error
        (reported by the runner as a finding, not an exception)."""
        if self._tree is None and self.parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=self.rel)
            except SyntaxError as exc:
                self.parse_error = exc
        return self._tree

    @property
    def suppressions(self) -> dict[int, frozenset[str]]:
        if self._suppressions is None:
            self._suppressions = suppression_map(self.text)
        return self._suppressions


class DocFile:
    """One markdown document (event-schema sync reads the kind table)."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = path
        self.rel = rel.as_posix()
        self.text = path.read_text()


class Project:
    """Everything one lint run analyses."""

    def __init__(self, paths: list[str], root: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else Path.cwd()
        self.files: list[SourceFile] = []
        self.docs: list[DocFile] = []
        seen: set[Path] = set()
        for raw in paths:
            p = Path(raw)
            if not p.exists():
                raise LintError(f"no such file or directory: {raw}")
            for path in self._expand(p):
                key = path.resolve()
                if key in seen:
                    continue
                seen.add(key)
                if path.suffix == ".py":
                    self.files.append(SourceFile(path, self.root))
                else:
                    self.docs.append(DocFile(path, self.root))
        self.files.sort(key=lambda f: f.rel)
        self.docs.sort(key=lambda d: d.rel)

    @staticmethod
    def _expand(p: Path) -> Iterator[Path]:
        if p.is_file():
            yield p
            return
        for path in sorted(p.rglob("*.py")):
            if "__pycache__" not in path.parts:
                yield path
        yield from sorted(p.rglob("*.md"))

    # -- lookups rules use -------------------------------------------------

    def find_module(self, basename: str) -> Optional[SourceFile]:
        """The unique source file named ``basename`` (e.g. ``params.py``);
        None when absent, the shortest path when several match (the real
        module beats a fixture nested deeper)."""
        hits = [f for f in self.files if f.path.name == basename]
        if not hits:
            return None
        return min(hits, key=lambda f: (len(Path(f.rel).parts), f.rel))

    def find_doc(self, basename: str) -> Optional[DocFile]:
        hits = [d for d in self.docs if d.path.name == basename]
        if not hits:
            return None
        return min(hits, key=lambda d: (len(Path(d.rel).parts), d.rel))

    def scoped(self, dirs: frozenset[str]) -> Iterator[SourceFile]:
        """Source files whose directory path intersects ``dirs``."""
        for f in self.files:
            if f.scope_parts & dirs:
                yield f
