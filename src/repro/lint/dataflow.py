"""Shared-state dataflow inference for the concurrency rules.

The concurrency rules (``lock-discipline``, ``lock-order``,
``fork-safety``) all need the same facts about a class: which of its
attributes are locks, which lock (if any) protects each access to every
other attribute, and what the code *declares* about that protection.
This module computes those facts once per file; the rules interpret
them.

The analysis is deliberately **lexical**.  An access is "under" a lock
when a ``with self._lock:`` block encloses it in the source -- including
across nested ``def``/``lambda`` boundaries, because the dominant idiom
in this tree is a predicate closure evaluated *by* the lock's own
machinery (``Condition.wait_for(lambda: self._next_seq > cursor)`` runs
the lambda with the condition's lock held).  Closures that instead cross
a thread boundary (submitted to an executor, registered as a future
callback) are handled by a dedicated escape check in the
lock-discipline rule, not by weakening the lexical model.

Contract vocabulary (scanned from trailing comments, like suppressions):

* ``# repro-lint: guarded-by[_lock]`` on an ``__init__`` assignment --
  every access to the attribute outside ``__init__`` must hold
  ``self._lock``;
* ``# repro-lint: holds[_lock]`` on a ``def`` line -- the method is an
  internal helper only ever called with ``self._lock`` held, so its body
  is analysed as if the lock were taken at entry;
* ``# repro-lint: fork-safe`` on a ``def`` line -- the function is
  exempt from the fork/pool-safety checks (it is *designed* to run in a
  pool worker).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lint.project import SourceFile
from repro.lint.visitor import dotted_name

#: The contract verbs, in documentation order.  The lock-discipline rule
#: keeps the vocabulary table in docs/STATIC_ANALYSIS.md in sync with
#: this tuple, the same way the event-schema rule pins its kind table.
CONTRACT_MARKERS: tuple[str, ...] = ("guarded-by", "holds", "fork-safe")

#: ``threading`` constructors whose result is a lock (or owns one).
LOCK_CONSTRUCTORS = frozenset(
    ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")
)

#: Executor/pool methods whose function argument runs on another thread
#: or process.  ``add_done_callback`` is included: callbacks run on a
#: pool thread, so a closure handed to one crosses a thread boundary
#: exactly like a submitted task.
DISPATCH_METHODS = frozenset(
    (
        "submit",
        "map",
        "imap",
        "imap_unordered",
        "apply",
        "apply_async",
        "starmap",
        "add_done_callback",
    )
)

#: Method calls that mutate their receiver: ``self._jobs.pop(...)`` is a
#: *write* to ``_jobs`` for classification purposes, exactly like
#: ``self._jobs[k] = v``.
MUTATOR_METHODS = frozenset(
    (
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "setdefault", "update",
    )
)

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>guarded-by|holds)\[(?P<args>[^\]]*)\]"
)
_FORK_SAFE = re.compile(r"#\s*repro-lint:\s*fork-safe\b")


@dataclass(frozen=True)
class Marker:
    """One contract comment: a verb and its bracketed lock list."""

    verb: str
    args: tuple[str, ...]


def contract_markers(source: str) -> dict[int, Marker]:
    """``{line_number: marker}`` for every guarded-by/holds comment."""
    out: dict[int, Marker] = {}
    if "repro-lint" not in source:  # fast path, mirrors suppress.py
        return out
    for lineno, line in enumerate(source.splitlines(), 1):
        m = _MARKER.search(line)
        if m is None:
            continue
        args = tuple(
            tok.strip() for tok in m.group("args").split(",") if tok.strip()
        )
        out[lineno] = Marker(verb=m.group("verb"), args=args)
    return out


def fork_safe_lines(source: str) -> frozenset[int]:
    """Line numbers carrying a ``# repro-lint: fork-safe`` marker."""
    if "repro-lint" not in source:
        return frozenset()
    return frozenset(
        lineno
        for lineno, line in enumerate(source.splitlines(), 1)
        if _FORK_SAFE.search(line) is not None
    )


# ---------------------------------------------------------------------------
# Per-class facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` read or write, with its lock context."""

    attr: str
    line: int
    write: bool
    method: str
    held: frozenset[str]  #: canonical lock names held lexically
    in_init: bool
    in_closure: bool  #: inside a nested def/lambda


@dataclass(frozen=True)
class AcquireEvent:
    """One ``with self.<lock>:`` entry and the locks already held."""

    lock: str  #: canonical name of the lock being acquired
    held: frozenset[str]  #: canonical locks held at the acquire site
    line: int
    method: str


@dataclass(frozen=True)
class SelfCall:
    """One ``self.m(...)`` call (for lock-order call propagation)."""

    callee: str
    held: frozenset[str]
    line: int
    method: str


@dataclass(frozen=True)
class ReturnEscape:
    """A guardable attribute returned (directly or via a local alias)."""

    attr: str
    line: int
    method: str


@dataclass(frozen=True)
class YieldEvent:
    """A ``yield`` reached while a lock is held lexically."""

    line: int
    method: str
    held: frozenset[str]


@dataclass(frozen=True)
class CaptureEvent:
    """A closure handed to a dispatch method, and the attrs it reads."""

    attrs: frozenset[str]
    line: int
    method: str
    api: str  #: the dispatch method name (``submit``, ...)


@dataclass
class ClassState:
    """Everything the concurrency rules need to know about one class."""

    name: str
    source: SourceFile
    node: ast.ClassDef
    locks: dict[str, int] = field(default_factory=dict)
    alias_of: dict[str, str] = field(default_factory=dict)
    declared: dict[str, tuple[str, int]] = field(default_factory=dict)
    holds: dict[str, frozenset[str]] = field(default_factory=dict)
    method_lines: dict[str, int] = field(default_factory=dict)
    accesses: list[AttrAccess] = field(default_factory=list)
    acquires: list[AcquireEvent] = field(default_factory=list)
    self_calls: list[SelfCall] = field(default_factory=list)
    returns: list[ReturnEscape] = field(default_factory=list)
    yields: list[YieldEvent] = field(default_factory=list)
    captures: list[CaptureEvent] = field(default_factory=list)

    def canonical(self, lock: str) -> str:
        """Follow ``Condition(self._lock)`` aliases to the real lock."""
        seen: set[str] = set()
        while lock in self.alias_of and lock not in seen:
            seen.add(lock)
            lock = self.alias_of[lock]
        return lock

    @property
    def has_locks(self) -> bool:
        return bool(self.locks)


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _lock_constructor(call: ast.expr) -> Optional[ast.Call]:
    """The call node when ``call`` constructs a ``threading`` lock."""
    if not isinstance(call, ast.Call):
        return None
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, tail = name.rpartition(".")
    if tail not in LOCK_CONSTRUCTORS:
        return None
    if head and head.split(".")[-1] != "threading":
        return None
    return call

def _self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def module_locks(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to ``threading`` lock constructors."""
    out: dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _lock_constructor(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = stmt.lineno
    return out


def _collect_contracts(
    cls: ClassState, markers: dict[int, Marker]
) -> None:
    """First pass: locks, aliases, declarations and holds annotations."""
    for item in cls.node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cls.method_lines[item.name] = item.lineno
        marker = markers.get(item.lineno)
        if marker is not None and marker.verb == "holds":
            cls.holds[item.name] = frozenset(marker.args)
        for node in ast.walk(item):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
                value: Optional[ast.expr] = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None or value is None:
                    continue
                ctor = _lock_constructor(value)
                if ctor is not None:
                    cls.locks[attr] = node.lineno
                    if ctor.args:
                        underlying = _self_attr(ctor.args[0])
                        if underlying is not None:
                            cls.alias_of[attr] = underlying
                marker = markers.get(node.lineno)
                if marker is not None and marker.verb == "guarded-by":
                    for lock in marker.args:
                        cls.declared[attr] = (lock, node.lineno)


_Func = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class _MethodWalker:
    """Recursive walk of one method body, tracking held locks."""

    def __init__(self, cls: ClassState, func: _Func) -> None:
        self.cls = cls
        self.method = func.name
        self.in_init = func.name == "__init__"
        held0 = frozenset(
            cls.canonical(lk) for lk in cls.holds.get(func.name, frozenset())
        )
        self._aliases: dict[str, str] = {}  #: local name -> self attr
        self._nested: dict[str, _Func] = {}  #: nested def name -> node
        for stmt in func.body:
            self._visit(stmt, held0, in_closure=False)

    # -- helpers ----------------------------------------------------------

    def _as_lock(self, expr: ast.expr) -> Optional[str]:
        attr = _self_attr(expr)
        if attr is not None and attr in self.cls.locks:
            return self.cls.canonical(attr)
        return None

    def _plain_attr(self, expr: ast.expr) -> Optional[str]:
        """``attr`` for a non-lock, non-method ``self.<attr>``."""
        attr = _self_attr(expr)
        if (
            attr is not None
            and attr not in self.cls.locks
            and attr not in self.cls.method_lines
        ):
            return attr
        return None

    def _record(
        self,
        attr: str,
        line: int,
        write: bool,
        held: frozenset[str],
        in_closure: bool,
    ) -> None:
        self.cls.accesses.append(
            AttrAccess(
                attr=attr,
                line=line,
                write=write,
                method=self.method,
                held=held,
                in_init=self.in_init,
                in_closure=in_closure,
            )
        )

    def _closure_attrs(self, node: ast.AST) -> frozenset[str]:
        """Every non-lock ``self.<attr>`` read anywhere inside ``node``
        (method references excluded: calling a method that takes the
        lock itself is the *correct* cross-thread idiom)."""
        return frozenset(
            n.attr
            for n in ast.walk(node)
            if isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and n.value.id == "self"
            and n.attr not in self.cls.locks
            and n.attr not in self.cls.method_lines
        )

    # -- the walk ---------------------------------------------------------

    def _visit(
        self, node: ast.AST, held: frozenset[str], in_closure: bool
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                lock = self._as_lock(item.context_expr)
                if lock is not None:
                    self.cls.acquires.append(
                        AcquireEvent(
                            lock=lock,
                            held=frozenset(acquired),
                            line=item.context_expr.lineno,
                            method=self.method,
                        )
                    )
                    acquired.add(lock)
                else:
                    self._visit(item.context_expr, held, in_closure)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held, in_closure)
            inner = frozenset(acquired)
            for child in node.body:
                self._visit(child, inner, in_closure)
            return

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._nested[node.name] = node
            for default in node.args.defaults + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self._visit(default, held, in_closure)
            for child in node.body:
                self._visit(child, held, in_closure=True)
            return

        if isinstance(node, ast.Lambda):
            for default in node.args.defaults + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self._visit(default, held, in_closure)
            self._visit(node.body, held, in_closure=True)
            return

        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if (
                attr is not None
                and attr not in self.cls.locks
                and attr not in self.cls.method_lines
            ):
                self._record(
                    attr,
                    node.lineno,
                    write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    held=held,
                    in_closure=in_closure,
                )
            for child in ast.iter_child_nodes(node):
                self._visit(child, held, in_closure)
            return

        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            # `self._jobs[k] = v` / `del self._jobs[k]`: a container
            # mutation is a write to the attribute.
            attr = self._plain_attr(node.value)
            if attr is not None:
                self._record(
                    attr, node.lineno, write=True, held=held,
                    in_closure=in_closure,
                )

        if isinstance(node, ast.Assign):
            # Track `x = self.attr` so `return x` counts as an escape of
            # self.attr, not of an anonymous local.
            value_attr = _self_attr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if value_attr is not None:
                        self._aliases[target.id] = value_attr
                    else:
                        self._aliases.pop(target.id, None)
            for child in ast.iter_child_nodes(node):
                self._visit(child, held, in_closure)
            return

        if isinstance(node, ast.Return) and node.value is not None:
            escaped = _self_attr(node.value)
            if escaped is None and isinstance(node.value, ast.Name):
                escaped = self._aliases.get(node.value.id)
            if (
                escaped is not None
                and escaped not in self.cls.locks
                and escaped not in self.cls.method_lines
            ):
                self.cls.returns.append(
                    ReturnEscape(
                        attr=escaped, line=node.lineno, method=self.method
                    )
                )
            self._visit(node.value, held, in_closure)
            return

        if isinstance(node, (ast.Yield, ast.YieldFrom)) and held:
            self.cls.yields.append(
                YieldEvent(line=node.lineno, method=self.method, held=held)
            )
            # fall through: still record accesses in the yielded expr

        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
            ):
                receiver = self._plain_attr(node.func.value)
                if receiver is not None:
                    self._record(
                        receiver, node.lineno, write=True, held=held,
                        in_closure=in_closure,
                    )
            name = dotted_name(node.func)
            if name is not None and name.startswith("self."):
                parts = name.split(".")
                if len(parts) == 2:
                    self.cls.self_calls.append(
                        SelfCall(
                            callee=parts[1],
                            held=held,
                            line=node.lineno,
                            method=self.method,
                        )
                    )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in DISPATCH_METHODS
            ):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    target: Optional[ast.AST] = None
                    if isinstance(arg, ast.Lambda):
                        target = arg
                    elif (
                        isinstance(arg, ast.Name)
                        and arg.id in self._nested
                    ):
                        target = self._nested[arg.id]
                    if target is not None:
                        attrs = self._closure_attrs(target)
                        if attrs:
                            self.cls.captures.append(
                                CaptureEvent(
                                    attrs=attrs,
                                    line=node.lineno,
                                    method=self.method,
                                    api=node.func.attr,
                                )
                            )

        for child in ast.iter_child_nodes(node):
            self._visit(child, held, in_closure)


def analyze_file(source_file: SourceFile) -> list[ClassState]:
    """Per-class concurrency facts for every class in ``source_file``."""
    tree = source_file.tree
    if tree is None:
        return []
    markers = contract_markers(source_file.text)
    out: list[ClassState] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls = ClassState(name=node.name, source=source_file, node=node)
        _collect_contracts(cls, markers)
        for item in cls.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _MethodWalker(cls, item)
        out.append(cls)
    return out


# ---------------------------------------------------------------------------
# Attribute classification
# ---------------------------------------------------------------------------

#: Classification labels (also used in the documentation).
CONFINED = "thread-confined"
GUARDED = "lock-guarded"
IMMUTABLE = "immutable-after-publish"


def classify_attr(cls: ClassState, attr: str) -> str:
    """The inferred sharing class of one attribute.

    ``lock-guarded`` when every access outside ``__init__`` holds a
    common lock; ``immutable-after-publish`` when the attribute is
    written only in ``__init__`` and merely read afterwards;
    ``thread-confined`` otherwise (the default claim: if it were shared,
    some access would be locked).
    """
    outside = [a for a in cls.accesses if a.attr == attr and not a.in_init]
    if not outside or all(not a.write for a in outside):
        return IMMUTABLE
    if common_lock(outside) is not None:
        return GUARDED
    return CONFINED


def common_lock(accesses: list[AttrAccess]) -> Optional[str]:
    """The single lock held at *every* access, or None."""
    if not accesses:
        return None
    shared: Optional[frozenset[str]] = None
    for access in accesses:
        shared = access.held if shared is None else shared & access.held
        if not shared:
            return None
    assert shared is not None
    return sorted(shared)[0]
