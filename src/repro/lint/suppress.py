"""Per-line finding suppression.

A finding is silenced by a trailing comment on the *reported* line:

* ``# repro-lint: ignore[rule-id]`` -- silence one rule;
* ``# repro-lint: ignore[a,b]`` -- silence several rules;
* ``# repro-lint: ignore`` -- silence every rule on that line.

Suppressions are deliberately per-line (not per-block, not per-file): a
wide waiver would defeat the point of rules that exist because humans
forget.  Every suppression in the tree is grep-able via the literal
``repro-lint: ignore`` marker.
"""

from __future__ import annotations

import re

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES = "*"

_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?"
)


def suppressions_for_line(line: str) -> frozenset[str]:
    """Rule ids suppressed by one source line (may contain ``ALL_RULES``)."""
    m = _SUPPRESS.search(line)
    if m is None:
        return frozenset()
    rules = m.group("rules")
    if rules is None:
        return frozenset((ALL_RULES,))
    ids = frozenset(tok.strip() for tok in rules.split(",") if tok.strip())
    return ids if ids else frozenset((ALL_RULES,))


def suppression_map(source: str) -> dict[int, frozenset[str]]:
    """``{line_number: suppressed_rule_ids}`` for every marked line."""
    out: dict[int, frozenset[str]] = {}
    if "repro-lint" not in source:  # fast path: most files have no marker
        return out
    for lineno, line in enumerate(source.splitlines(), 1):
        ids = suppressions_for_line(line)
        if ids:
            out[lineno] = ids
    return out


def is_suppressed(
    suppressions: dict[int, frozenset[str]], line: int, rule_id: str
) -> bool:
    ids = suppressions.get(line)
    if not ids:
        return False
    return ALL_RULES in ids or rule_id in ids
