"""Zero Inclusion Victim (ZIV) LLC -- a full reproduction of
"Zero Inclusion Victim: Isolating Core Caches from Inclusive Last-level
Cache Evictions" (Mainak Chaudhuri, ISCA 2021).

Quickstart::

    from repro import scaled_config, homogeneous_mix, run_workload

    config = scaled_config("512KB")
    workload = homogeneous_mix("xalancbmk.2", cores=config.cores)
    baseline = run_workload(config, workload, "inclusive", llc_policy="lru")
    ziv = run_workload(config, workload, "ziv:likelydead", llc_policy="lru")
    print(baseline.stats.inclusion_victims, ziv.stats.inclusion_victims)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.params import (
    BLOCK_BYTES,
    CacheGeometry,
    ConfigError,
    DirectoryGeometry,
    DRAMParams,
    LLCGeometry,
    SystemConfig,
    paper_scale_config,
    scaled_config,
    scaled_manycore_config,
)
from repro.hierarchy import CacheHierarchy
from repro.schemes import make_scheme
from repro.core import ZIVScheme
from repro.sim import Simulation, SimResult, Workload
from repro.sim.engine import run_workload
from repro.sim.metrics import geomean, mix_speedup, speedup_summary
from repro.workloads import (
    ALL_PROFILE_NAMES,
    MT_APP_NAMES,
    build_trace,
    heterogeneous_mixes,
    homogeneous_mix,
    homogeneous_mixes,
    multithreaded_workload,
)

__version__ = "1.0.0"

__all__ = [
    "BLOCK_BYTES",
    "CacheGeometry",
    "ConfigError",
    "DirectoryGeometry",
    "DRAMParams",
    "LLCGeometry",
    "SystemConfig",
    "scaled_config",
    "scaled_manycore_config",
    "paper_scale_config",
    "CacheHierarchy",
    "make_scheme",
    "ZIVScheme",
    "Simulation",
    "SimResult",
    "Workload",
    "run_workload",
    "geomean",
    "mix_speedup",
    "speedup_summary",
    "ALL_PROFILE_NAMES",
    "MT_APP_NAMES",
    "build_trace",
    "homogeneous_mix",
    "homogeneous_mixes",
    "heterogeneous_mixes",
    "multithreaded_workload",
]
